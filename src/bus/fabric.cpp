#include "bus/fabric.hpp"

#include "bus/address_map.hpp"
#include "mc/encode.hpp"
#include "sim/logging.hpp"

namespace cni
{

NodeFabric::NodeFabric(EventQueue &eq, const std::string &name,
                       NiPlacement p)
    : CoherenceDomain(p), eq_(eq),
      membus_(eq, name + ".membus", BusKind::MemoryBus),
      stats_(name + ".bridge"), cDownstream_(stats_, "downstream"),
      cUpstream_(stats_, "upstream"),
      cBridgeConflicts_(stats_, "bridge_conflicts")
{
    if (p == NiPlacement::IoBus) {
        iobus_ = std::make_unique<SnoopBus>(eq, name + ".iobus",
                                            BusKind::IoBus);
    } else if (p == NiPlacement::CacheBus) {
        cachebus_ = std::make_unique<SnoopBus>(eq, name + ".cachebus",
                                               BusKind::CacheBus);
    }
}

SnoopBus &
NodeFabric::niBus()
{
    switch (placement_) {
      case NiPlacement::CacheBus:
        return *cachebus_;
      case NiPlacement::IoBus:
        return *iobus_;
      case NiPlacement::MemoryBus:
        return membus_;
    }
    return membus_;
}

void
NodeFabric::mergeStats(StatSet &agg) const
{
    // The exact order Machine::aggregateStats used before the domain
    // API: memory bus, I/O bus, bridge — reports must not reshuffle.
    agg.merge(membus_.stats());
    if (iobus_)
        agg.merge(iobus_->stats());
    agg.merge(stats_);
}

bool
NodeFabric::isPosted(TxnKind k)
{
    return k == TxnKind::UncachedWrite || k == TxnKind::Upgrade ||
           k == TxnKind::Writeback;
}

void
NodeFabric::procIssue(const BusTxn &txn, SnoopBus::Done done)
{
    if (isNiAddr(txn.addr)) {
        switch (placement_) {
          case NiPlacement::CacheBus:
            // The processor-local bus: point-to-point, 4-cycle accesses,
            // no coherence involvement of the rest of the node.
            cachebus_->transact(txn, std::move(done));
            return;
          case NiPlacement::IoBus:
            crossDownstream(txn, std::move(done));
            return;
          case NiPlacement::MemoryBus:
            break; // fall through to the memory bus
        }
    }
    membus_.transact(txn, std::move(done));
}

void
NodeFabric::deviceIssue(const BusTxn &txn, SnoopBus::Done done)
{
    cni_assert(placement_ != NiPlacement::CacheBus);
    if (placement_ == NiPlacement::MemoryBus) {
        membus_.transact(txn, std::move(done));
        return;
    }
    crossUpstream(txn, std::move(done));
}

void
NodeFabric::crossDownstream(BusTxn txn, SnoopBus::Done done)
{
    cDownstream_.incr();
    if (membus_.busy())
        cBridgeConflicts_.incr();

    if (isPosted(txn.kind)) {
        // Posted: the processor side completes after the memory-bus
        // occupancy; the bridge forwards onto the I/O bus asynchronously
        // (I/O-bus FIFO order preserves store ordering).
        membus_.transact(
            txn, [this, txn, done = std::move(done)](const SnoopResult &r) {
                BusTxn fwd = txn;
                fwd.forwarded = true;
                fwd.requesterId = -1; // the bridge
                iobus_->transact(fwd, nullptr);
                if (done)
                    done(r);
            });
        return;
    }

    // Blocking read: hold the memory bus across the entire I/O-bus
    // transaction ("the bridge ... blocks on reads").
    membus_.acquire(
        txn, [this, txn, done = std::move(done)](const SnoopResult &) {
            BusTxn fwd = txn;
            fwd.forwarded = true;
            fwd.requesterId = -1;
            iobus_->transact(
                fwd, [this, done = std::move(done)](const SnoopResult &io) {
                    membus_.release();
                    if (done)
                        done(io);
                });
        });
}

void
NodeFabric::crossUpstream(BusTxn txn, SnoopBus::Done done)
{
    cUpstream_.incr();
    if (membus_.busy())
        cBridgeConflicts_.incr();

    if (isPosted(txn.kind)) {
        // Device-side invalidations and writebacks are buffered by the
        // bridge. The memory-bus side executes first (so the processor
        // cache is snooped), then the I/O-bus occupancy tail is paid; the
        // device resumes after the full I/O-side cost.
        BusTxn up = txn;
        up.forwarded = true;
        up.requesterId = -1;
        membus_.transact(
            up, [this, txn, done = std::move(done)](const SnoopResult &r) {
                iobus_->transact(
                    txn, [done = std::move(done), r](const SnoopResult &) {
                        if (done)
                            done(r);
                    });
            });
        return;
    }

    // Blocking pull (device coherently reads a block whose valid copy may
    // be in the processor cache). Memory-bus-first acquisition keeps the
    // two-bus locking deadlock-free; the I/O-bus transaction's occupancy
    // covers the full Table 2 cost.
    BusTxn up = txn;
    up.forwarded = true;
    up.requesterId = -1;
    membus_.acquire(
        up, [this, txn, done = std::move(done)](const SnoopResult &mem) {
            iobus_->transact(
                txn,
                [this, mem, done = std::move(done)](const SnoopResult &io) {
                    membus_.release();
                    SnoopResult merged = io;
                    merged.cacheSupplied |= mem.cacheSupplied;
                    merged.sharedCopy |= mem.sharedCopy;
                    merged.homeFound |= mem.homeFound;
                    if (mem.cacheSupplied)
                        merged.data = mem.data;
                    if (done)
                        done(merged);
                });
        });
}

std::shared_ptr<const void>
NodeFabric::mcSnapshot() const
{
    // Non-null so the checker knows the backend supports snapshots;
    // the buses hold no state between transactions to save.
    return std::make_shared<int>(0);
}

void
NodeFabric::mcRestore(const std::shared_ptr<const void> &snap)
{
    cni_assert(snap != nullptr);
}

void
NodeFabric::mcEncode(McEncoder &enc) const
{
    // Snooping buses serialize atomically inside one transaction's event
    // cascade, so there is no inter-transaction protocol state to fold
    // into the fingerprint.
    (void)enc;
}

void
NodeFabric::mcEncodeWire(McEncoder &enc, const std::uint8_t *blob,
                         std::size_t len) const
{
    // Bus transactions carry no protocol-specific wire structure: fold
    // the raw bytes, exactly as the stateless default does.
    for (std::size_t i = 0; i < len; ++i)
        enc.u8(blob[i]);
}

bool
NodeFabric::mcQuiescent(std::string *why) const
{
    auto check = [why](const SnoopBus *bus) {
        if (bus == nullptr)
            return true;
        if (!bus->busy() && bus->queueDepth() == 0)
            return true;
        if (why != nullptr)
            *why = bus->name() + ": bus busy or requests queued";
        return false;
    };
    return check(&membus_) && check(iobus_.get()) &&
           check(cachebus_.get());
}

std::size_t
NodeFabric::mcParkDepth() const
{
    std::size_t depth = membus_.queueDepth();
    if (iobus_)
        depth = std::max(depth, iobus_->queueDepth());
    if (cachebus_)
        depth = std::max(depth, cachebus_->queueDepth());
    return depth;
}

void
detail::registerSnoopDomain(CoherenceRegistry &r)
{
    CoherenceTraits t;
    t.snooping = true;
    // MBus-class electrical cap on agents sharing one bus — the limit
    // that motivates directory protocols (ROADMAP: "snooping buses cap a
    // node's agent count").
    t.maxBusAgents = 15;
    t.overFabric = false;
    t.supportsIoPlacement = true;
    t.supportsCachePlacement = true;
    t.supportsSnarfing = true;
    t.reportSection = false; // keeps legacy reports byte-identical
    r.register_("snoop", t, [](const CohBuildContext &c) {
        return std::make_unique<NodeFabric>(c.eq, c.name, c.placement);
    });
}

} // namespace cni
