/**
 * @file
 * Per-node bus fabric: memory bus, optional coherent I/O bus with bridge,
 * optional cache bus, and the routing rules between them. This is the
 * "snoop" CoherenceDomain backend (and the default): coherence is kept by
 * bus broadcast, every attached agent snoops every transaction.
 *
 * The I/O bridge model follows Section 4.1 of the paper:
 *  - reads that cross the bridge BLOCK: they hold the memory bus for the
 *    whole I/O-bus transaction (whose Table 2 occupancy already includes
 *    the memory-bus cycles);
 *  - writes and invalidations that cross are BUFFERED (posted): the
 *    issuing side completes after its own bus's occupancy and the bridge
 *    forwards the transaction to the other bus asynchronously, in FIFO
 *    order;
 *  - simultaneous initiation from both sides serializes through the
 *    memory-bus-first acquisition order (this subsumes the paper's
 *    NACK-and-retry rule: the same transaction wins, the loser retries
 *    next; we count these conflicts in `bridge_conflicts`).
 */

#ifndef CNI_BUS_FABRIC_HPP
#define CNI_BUS_FABRIC_HPP

#include <memory>
#include <string>

#include "bus/bus.hpp"
#include "coh/domain.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace cni
{

class NodeFabric : public CoherenceDomain
{
  public:
    NodeFabric(EventQueue &eq, const std::string &name, NiPlacement p);

    SnoopBus &membus() { return membus_; }
    SnoopBus *iobus() { return iobus_.get(); }
    SnoopBus *cachebus() { return cachebus_.get(); }

    /** The bus the NI device attaches to. */
    SnoopBus &niBus();

    // CoherenceDomain -------------------------------------------------------

    const char *kind() const override { return "snoop"; }

    int attachCache(BusAgent *agent) override
    {
        return membus_.attach(agent);
    }

    int attachHome(BusAgent *agent) override
    {
        return membus_.attach(agent);
    }

    int attachNi(BusAgent *agent) override { return niBus().attach(agent); }

    /**
     * Issue a processor-initiated transaction. Routes to the cache bus
     * (NI-on-cache-bus placements), across the bridge (NI on the I/O
     * bus), or onto the memory bus. `done` runs when the requester may
     * proceed (posted writes complete after the near-side occupancy).
     */
    void procIssue(const BusTxn &txn, Done done) override;

    /**
     * Issue an NI-device-initiated transaction (coherent pulls, upgrades,
     * writebacks). With the NI on the I/O bus these cross the bridge
     * upstream so the processor cache can be snooped.
     */
    void deviceIssue(const BusTxn &txn, Done done) override;

    Tick memBusOccupiedCycles() const override
    {
        return membus_.occupiedCycles();
    }

    void mergeStats(StatSet &agg) const override;

    // Model-checking seam: a snooping bus serializes atomically inside
    // the event cascade of one transaction, so between transactions its
    // protocol-visible state is empty — the seam reports idleness and a
    // trivial snapshot.
    std::shared_ptr<const void> mcSnapshot() const override;
    void mcRestore(const std::shared_ptr<const void> &snap) override;
    void mcEncode(McEncoder &enc) const override;
    void mcEncodeWire(McEncoder &enc, const std::uint8_t *blob,
                      std::size_t len) const override;
    bool mcQuiescent(std::string *why) const override;
    std::size_t mcParkDepth() const override;

    StatSet &stats() { return stats_; }

  private:
    void crossDownstream(BusTxn txn, SnoopBus::Done done);
    void crossUpstream(BusTxn txn, SnoopBus::Done done);
    static bool isPosted(TxnKind k);

    EventQueue &eq_;
    SnoopBus membus_;
    std::unique_ptr<SnoopBus> iobus_;
    std::unique_ptr<SnoopBus> cachebus_;
    StatSet stats_;
    StatSet::Counter cDownstream_;
    StatSet::Counter cUpstream_;
    StatSet::Counter cBridgeConflicts_;
};

} // namespace cni

#endif // CNI_BUS_FABRIC_HPP
