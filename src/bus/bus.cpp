#include "bus/bus.hpp"

#include "sim/logging.hpp"

namespace cni
{

const char *
toString(BusKind k)
{
    switch (k) {
      case BusKind::CacheBus:
        return "cache-bus";
      case BusKind::MemoryBus:
        return "memory-bus";
      case BusKind::IoBus:
        return "io-bus";
    }
    return "?";
}

const char *
toString(TxnKind k)
{
    switch (k) {
      case TxnKind::UncachedRead:
        return "UncachedRead";
      case TxnKind::UncachedWrite:
        return "UncachedWrite";
      case TxnKind::ReadShared:
        return "ReadShared";
      case TxnKind::ReadExclusive:
        return "ReadExclusive";
      case TxnKind::Upgrade:
        return "Upgrade";
      case TxnKind::Writeback:
        return "Writeback";
      case TxnKind::Update:
        return "Update";
    }
    return "?";
}

SnoopBus::SnoopBus(EventQueue &eq, std::string name, BusKind kind)
    : eq_(eq), name_(std::move(name)), kind_(kind),
      spec_(BusTimingSpec::forKind(kind)), stats_(name_),
      cTxns_(stats_, "txns"), cOccupancyCycles_(stats_, "occupancy_cycles")
{
    for (int k = 0; k < 7; ++k) {
        cTxnKind_[k] = StatSet::Counter(
            stats_, std::string("txn_") + toString(static_cast<TxnKind>(k)));
    }
}

int
SnoopBus::attach(BusAgent *agent)
{
    cni_assert(agent != nullptr);
    agents_.push_back(agent);
    return static_cast<int>(agents_.size()) - 1;
}

void
SnoopBus::transact(const BusTxn &txn, Done done)
{
    // Auto-release: compute occupancy at grant, hold for it, then complete
    // and free the bus in one step.
    Pending p;
    p.txn = txn;
    p.autoRelease = true;
    p.granted = std::move(done);
    queue_.push_back(std::move(p));
    if (!busy_)
        grantNext();
}

void
SnoopBus::acquire(const BusTxn &txn, Done granted)
{
    Pending p;
    p.txn = txn;
    p.autoRelease = false;
    p.granted = std::move(granted);
    queue_.push_back(std::move(p));
    if (!busy_)
        grantNext();
}

void
SnoopBus::release()
{
    cni_assert(busy_);
    busy_ = false;
    occupiedCycles_ += eq_.now() - heldSince_;
    if (!queue_.empty())
        grantNext();
}

void
SnoopBus::grantNext()
{
    cni_assert(!busy_);
    if (queue_.empty())
        return;
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    heldSince_ = eq_.now();
    startTxn(std::move(p));
}

void
SnoopBus::startTxn(Pending p)
{
    cTxns_.incr();
    cTxnKind_[static_cast<int>(p.txn.kind)].incr();

    SnoopResult res = broadcast(p.txn);

    if (p.autoRelease) {
        const Tick occ = occupancyFor(p.txn, res);
        cOccupancyCycles_.incr(occ);
        // Hold for the occupancy, then complete the requester and free
        // the bus. The completion callback runs before the next grant so
        // the requester's state update is ordered ahead of later snoops.
        eq_.scheduleIn(occ, [this, res, done = std::move(p.granted)] {
            if (done)
                done(res);
            release();
        });
    } else {
        // Manual hold (bridge): the holder learns the snoop result now and
        // calls release() itself.
        if (p.granted)
            p.granted(res);
    }
}

SnoopResult
SnoopBus::broadcast(const BusTxn &txn)
{
    SnoopResult res;
    int suppliers = 0;
    for (int i = 0; i < static_cast<int>(agents_.size()); ++i) {
        if (i == txn.requesterId)
            continue;
        SnoopReply r = agents_[i]->onBusTxn(txn);
        if (r.hadCopy)
            res.sharedCopy = true;
        if (r.supplied) {
            ++suppliers;
            res.cacheSupplied = true;
            res.ownershipTransferred = r.transferOwnership;
            res.data = r.data;
        }
        if (r.isHome) {
            res.homeFound = true;
            if (!res.cacheSupplied &&
                (txn.kind == TxnKind::UncachedRead ||
                 txn.kind == TxnKind::ReadShared ||
                 txn.kind == TxnKind::ReadExclusive)) {
                res.data = r.data;
            }
        }
    }
    cni_assert(suppliers <= 1);
    return res;
}

Tick
SnoopBus::occupancyFor(const BusTxn &txn, const SnoopResult &res) const
{
    switch (txn.kind) {
      case TxnKind::UncachedRead:
        return spec_.uncachedRead;
      case TxnKind::UncachedWrite:
        return spec_.uncachedWrite;
      case TxnKind::Upgrade:
        return spec_.addressOnly;
      case TxnKind::Update:
        // Word update: address + one word, uncached-write-sized.
        return spec_.uncachedWrite;
      case TxnKind::Writeback:
        // Block transfer toward the home: direction follows the writer.
        return txn.initiator == Initiator::Processor ? spec_.blockFromProc
                                                     : spec_.blockFromMemory;
      case TxnKind::ReadShared:
      case TxnKind::ReadExclusive:
        if (!res.cacheSupplied && homeOf(txn.addr) == Home::Memory)
            return spec_.blockFromMemory;
        // Data moves toward whoever asked for it.
        return txn.initiator == Initiator::Processor ? spec_.blockToProc
                                                     : spec_.blockFromProc;
    }
    return 0;
}

} // namespace cni
