/**
 * @file
 * Main-memory bus agent: the home for all of main memory.
 *
 * Supplies data on coherent reads when no cache owns the block, and
 * absorbs writebacks. Data values live in the node's NodeMemory image, so
 * this agent only participates in home/supplier arbitration and statistics.
 */

#ifndef CNI_MEM_MAIN_MEMORY_HPP
#define CNI_MEM_MAIN_MEMORY_HPP

#include <string>

#include "bus/address_map.hpp"
#include "bus/bus.hpp"
#include "sim/stats.hpp"

namespace cni
{

class MainMemory : public BusAgent
{
  public:
    explicit MainMemory(std::string name = "memory")
        : name_(std::move(name)), stats_(name_),
          cReads_(stats_, "reads"), cWritebacks_(stats_, "writebacks")
    {
    }

    SnoopReply
    onBusTxn(const BusTxn &txn) override
    {
        SnoopReply r;
        if (!isMainMemory(txn.addr))
            return r;
        switch (txn.kind) {
          case TxnKind::ReadShared:
          case TxnKind::ReadExclusive:
            r.isHome = true;
            cReads_.incr();
            break;
          case TxnKind::Writeback:
            r.isHome = true;
            cWritebacks_.incr();
            break;
          default:
            break;
        }
        return r;
    }

    bool isHome(Addr a) const override { return isMainMemory(a); }

    const std::string &agentName() const override { return name_; }

    StatSet &stats() { return stats_; }

  private:
    std::string name_;
    StatSet stats_;
    StatSet::Counter cReads_;
    StatSet::Counter cWritebacks_;
};

} // namespace cni

#endif // CNI_MEM_MAIN_MEMORY_HPP
