/**
 * @file
 * MOESI coherence states (Sweazey & Smith; MBus Level-2 style).
 *
 * The protocol modelled here is write-invalidate with owner supply:
 * Modified and Owned caches supply data on snooped reads; clean states
 * (Exclusive, Shared) let the home supply. A snooped ReadShared moves
 * M -> O (owner keeps supplying without a writeback), E -> S; a snooped
 * ReadExclusive or Upgrade invalidates.
 */

#ifndef CNI_MEM_MOESI_HPP
#define CNI_MEM_MOESI_HPP

namespace cni
{

enum class Moesi
{
    Invalid,
    Shared,
    Exclusive,
    Owned,
    Modified,
};

constexpr const char *
toString(Moesi s)
{
    switch (s) {
      case Moesi::Invalid:
        return "I";
      case Moesi::Shared:
        return "S";
      case Moesi::Exclusive:
        return "E";
      case Moesi::Owned:
        return "O";
      case Moesi::Modified:
        return "M";
    }
    return "?";
}

/**
 * Dragon-style update protocols reuse the MOESI lattice: shared-clean
 * (Sc) is Shared, shared-modified (Sm — this cache last wrote the line,
 * other caches hold pushed copies, home is stale) is Owned. No new
 * states: an Sm writer already behaves like an Owned supplier, and a
 * store to Sc/Sm raises an Upgrade the backend turns into word updates.
 */
constexpr Moesi SharedClean = Moesi::Shared;
constexpr Moesi SharedMod = Moesi::Owned;

/** Valid (readable) states. */
constexpr bool
isValid(Moesi s)
{
    return s != Moesi::Invalid;
}

/** States holding the only up-to-date copy relative to home (dirty). */
constexpr bool
isDirty(Moesi s)
{
    return s == Moesi::Modified || s == Moesi::Owned;
}

/** States with write permission. */
constexpr bool
isWritable(Moesi s)
{
    return s == Moesi::Modified || s == Moesi::Exclusive;
}

} // namespace cni

#endif // CNI_MEM_MOESI_HPP
