/**
 * @file
 * Processor store buffer for uncached stores.
 *
 * Modern processors retire uncached stores into a store buffer and keep
 * executing (Section 2.1); the buffer drains to the bus in FIFO order. A
 * memory-barrier instruction stalls until the buffer is empty — this is
 * the expensive step in the CDR three-cycle reuse handshake.
 */

#ifndef CNI_MEM_STORE_BUFFER_HPP
#define CNI_MEM_STORE_BUFFER_HPP

#include <deque>
#include <string>

#include "bus/bus.hpp"
#include "mem/cache.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace cni
{

class StoreBuffer
{
  public:
    StoreBuffer(EventQueue &eq, std::string name, TxnIssue issue,
                int depth = 8)
        : eq_(eq), name_(std::move(name)), issue_(std::move(issue)),
          depth_(depth), room_(eq), empty_(eq), stats_(name_),
          cFullStalls_(stats_, "full_stalls"), cStores_(stats_, "stores"),
          cMembars_(stats_, "membars")
    {
    }

    /**
     * Retire an uncached store. Costs one issue cycle when the buffer has
     * room; stalls the processor until an entry frees otherwise.
     */
    CoTask<void>
    push(Addr addr, std::uint64_t data)
    {
        while (static_cast<int>(entries_.size()) >= depth_) {
            cFullStalls_.incr();
            co_await room_.wait();
        }
        entries_.push_back(Entry{addr, data});
        cStores_.incr();
        pump();
        co_await delay(eq_, 1);
    }

    /** Memory barrier: wait until every buffered store has reached the bus. */
    CoTask<void>
    drain()
    {
        cMembars_.incr();
        while (!entries_.empty() || draining_)
            co_await empty_.wait();
    }

    bool empty() const { return entries_.empty() && !draining_; }

    StatSet &stats() { return stats_; }

  private:
    struct Entry
    {
        Addr addr;
        std::uint64_t data;
    };

    void
    pump()
    {
        if (draining_ || entries_.empty())
            return;
        draining_ = true;
        Entry e = entries_.front();
        BusTxn txn;
        txn.kind = TxnKind::UncachedWrite;
        txn.addr = e.addr;
        txn.data = e.data;
        txn.initiator = Initiator::Processor;
        issue_(txn, [this](SnoopResult) {
            entries_.pop_front();
            draining_ = false;
            room_.notifyAll();
            if (entries_.empty())
                empty_.notifyAll();
            else
                pump();
        });
    }

    EventQueue &eq_;
    std::string name_;
    TxnIssue issue_;
    int depth_;
    std::deque<Entry> entries_;
    bool draining_ = false;
    WaitChannel room_;
    WaitChannel empty_;
    StatSet stats_;
    StatSet::Counter cFullStalls_;
    StatSet::Counter cStores_;
    StatSet::Counter cMembars_;
};

} // namespace cni

#endif // CNI_MEM_STORE_BUFFER_HPP
