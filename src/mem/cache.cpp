#include "mem/cache.hpp"

#include "sim/logging.hpp"

namespace cni
{

Cache::Cache(EventQueue &eq, std::string name, std::size_t numBlocks,
             Initiator initiator)
    : eq_(eq), name_(std::move(name)), initiator_(initiator),
      lines_(numBlocks), stats_(name_), cLoadHits_(stats_, "load_hits"),
      cLoadMisses_(stats_, "load_misses"),
      cStoreHits_(stats_, "store_hits"),
      cStoreUpgrades_(stats_, "store_upgrades"),
      cStoreUpgradeFills_(stats_, "store_upgrade_fills"),
      cStoreUpgradeRaces_(stats_, "store_upgrade_races"),
      cStoreMisses_(stats_, "store_misses"),
      cStoreRefillRaces_(stats_, "store_refill_races"),
      cWritebacks_(stats_, "writebacks"), cClaims_(stats_, "claims"),
      cFlushWritebacks_(stats_, "flush_writebacks"),
      cSnoopSupplies_(stats_, "snoop_supplies"),
      cSnoopInvalidations_(stats_, "snoop_invalidations"),
      cSnarfs_(stats_, "snarfs")
{
    cni_assert(numBlocks > 0);
}

std::size_t
Cache::indexOf(Addr a) const
{
    return (blockAlign(a) / kBlockBytes) % lines_.size();
}

Cache::Line &
Cache::lineFor(Addr a)
{
    return lines_[indexOf(a)];
}

const Cache::Line &
Cache::lineFor(Addr a) const
{
    return lines_[indexOf(a)];
}

bool
Cache::hit(const Line &ln, Addr a) const
{
    return ln.tagValid && isValid(ln.state) && ln.tag == blockAlign(a);
}

Moesi
Cache::stateOf(Addr a) const
{
    const Line &ln = lineFor(a);
    return (ln.tagValid && ln.tag == blockAlign(a)) ? ln.state
                                                    : Moesi::Invalid;
}

bool
Cache::contains(Addr a) const
{
    return hit(lineFor(a), a);
}

ValueCompletion<SnoopResult>
Cache::issueTxn(TxnKind kind, Addr a)
{
    cni_assert(issue_);
    BusTxn txn;
    txn.kind = kind;
    txn.addr = blockAlign(a);
    txn.initiator = initiator_;
    txn.requesterId = requesterId_;
    return ValueCompletion<SnoopResult>(
        [this, txn](std::function<void(SnoopResult)> done) {
            issue_(txn, std::move(done));
        });
}

CoTask<void>
Cache::load(Addr a)
{
    Line &ln = lineFor(a);
    if (hit(ln, a)) {
        cLoadHits_.incr();
        ln.unreadUpdates = 0; // this update round was useful
        co_await delay(eq_, hitLatency_);
        co_return;
    }
    cLoadMisses_.incr();
    co_await refill(a, false);
}

CoTask<void>
Cache::store(Addr a)
{
    // The upgrade path can race with a remote invalidation arriving while
    // we wait for the bus; retry until we end with write permission.
    for (;;) {
        Line &ln = lineFor(a);
        if (hit(ln, a) && isWritable(ln.state)) {
            cStoreHits_.incr();
            ln.state = Moesi::Modified; // E -> M silently
            co_await delay(eq_, hitLatency_);
            co_return;
        }
        if (hit(ln, a)) {
            // Shared or Owned: address-only upgrade. Under an update
            // backend an Owned (Sm) writer lands here every store —
            // each write is its own update round by design.
            cStoreUpgrades_.incr();
            SnoopResult res = co_await issueTxn(TxnKind::Upgrade, a);
            Line &ln2 = lineFor(a);
            if (hit(ln2, a)) {
                // kSharersRemain grant: the update left live sharers, so
                // the writer installs Sm (Owned), not Modified. The
                // single upgrade round *is* the complete write.
                ln2.state =
                    res.sharersRemain ? Moesi::Owned : Moesi::Modified;
                ln2.unreadUpdates = 0;
                co_return;
            }
            if (res.upgradeFilled) {
                // Invalidated while the upgrade was in flight, but the
                // home converted it to a read-to-own and the completion
                // carried the block: install it, no retry round trip.
                cStoreUpgradeFills_.incr();
                ln2.tag = blockAlign(a);
                ln2.tagValid = true;
                ln2.state =
                    res.sharersRemain ? Moesi::Owned : Moesi::Modified;
                ln2.unreadUpdates = 0;
                co_return;
            }
            // Invalidated while arbitrating; fall through and retry.
            cStoreUpgradeRaces_.incr();
            continue;
        }
        cStoreMisses_.incr();
        SnoopResult res = co_await refill(a, true);
        Line &ln3 = lineFor(a);
        if (hit(ln3, a) &&
            (isWritable(ln3.state) ||
             (res.sharersRemain && ln3.state == Moesi::Owned))) {
            // Owned-after-exclusive-refill is the update-protocol success
            // state (Sm); forcing Modified would pretend the sharers the
            // grant told us about are gone.
            if (!res.sharersRemain)
                ln3.state = Moesi::Modified;
            ln3.unreadUpdates = 0;
            co_return;
        }
        // Extremely unlikely: lost the block between refill completion and
        // now (same tick). Retry.
        cStoreRefillRaces_.incr();
    }
}

CoTask<void>
Cache::fetchBlock(Addr a, bool exclusive)
{
    Line &ln = lineFor(a);
    if (hit(ln, a) && (!exclusive || isWritable(ln.state))) {
        if (exclusive)
            ln.state = Moesi::Modified;
        else
            ln.unreadUpdates = 0;
        co_return;
    }
    if (exclusive && hit(ln, a)) {
        cStoreUpgrades_.incr();
        SnoopResult res = co_await issueTxn(TxnKind::Upgrade, a);
        Line &ln2 = lineFor(a);
        if (hit(ln2, a)) {
            ln2.state = res.sharersRemain ? Moesi::Owned : Moesi::Modified;
            ln2.unreadUpdates = 0;
            co_return;
        }
        if (res.upgradeFilled) {
            cStoreUpgradeFills_.incr();
            ln2.tag = blockAlign(a);
            ln2.tagValid = true;
            ln2.state = res.sharersRemain ? Moesi::Owned : Moesi::Modified;
            ln2.unreadUpdates = 0;
            co_return;
        }
    }
    SnoopResult res = co_await refill(a, exclusive);
    if (exclusive && !res.sharersRemain) {
        // (With sharers remaining the refill already installed Owned/Sm.)
        Line &ln3 = lineFor(a);
        if (hit(ln3, a))
            ln3.state = Moesi::Modified;
    }
}

CoTask<SnoopResult>
Cache::refill(Addr a, bool exclusive)
{
    Line &ln = lineFor(a);
    // Victim writeback: dirty data must reach its home before the frame is
    // reused.
    if (ln.tagValid && isDirty(ln.state)) {
        cWritebacks_.incr();
        const Addr victim = ln.tag;
        ln.state = Moesi::Invalid;
        co_await issueTxn(TxnKind::Writeback, victim);
    }
    SnoopResult res = co_await issueTxn(
        exclusive ? TxnKind::ReadExclusive : TxnKind::ReadShared, a);
    Line &ln2 = lineFor(a);
    ln2.tag = blockAlign(a);
    ln2.tagValid = true;
    ln2.unreadUpdates = 0;
    if (exclusive) {
        // Update backends keep the sharers alive: the grant says so and
        // the writer installs Sm (Owned) instead of Modified.
        ln2.state = res.sharersRemain ? Moesi::Owned : Moesi::Modified;
    } else if (res.cacheSupplied && res.ownershipTransferred) {
        ln2.state = Moesi::Owned;
    } else if (res.cacheSupplied || res.sharedCopy) {
        ln2.state = Moesi::Shared;
    } else {
        ln2.state = Moesi::Exclusive;
    }
    co_return res;
}

CoTask<void>
Cache::claimBlock(Addr a, bool deferWriteback)
{
    Line &ln = lineFor(a);
    if (hit(ln, a) && isWritable(ln.state)) {
        ln.state = Moesi::Modified;
        co_return;
    }
    // Displace a dirty victim (different block in the same frame).
    if (ln.tagValid && ln.tag != blockAlign(a) && isDirty(ln.state)) {
        cWritebacks_.incr();
        const Addr victim = ln.tag;
        ln.state = Moesi::Invalid;
        if (deferWriteback) {
            // Writeback buffer: the bus transaction is posted and drains
            // in FIFO order; the claim proceeds immediately.
            BusTxn txn;
            txn.kind = TxnKind::Writeback;
            txn.addr = blockAlign(victim);
            txn.initiator = initiator_;
            txn.requesterId = requesterId_;
            issue_(txn, [](SnoopResult) {});
        } else {
            co_await issueTxn(TxnKind::Writeback, victim);
        }
    }
    cClaims_.incr();
    SnoopResult res = co_await issueTxn(TxnKind::Upgrade, a);
    Line &ln2 = lineFor(a);
    ln2.tag = blockAlign(a);
    ln2.tagValid = true;
    ln2.state = res.sharersRemain ? Moesi::Owned : Moesi::Modified;
    ln2.unreadUpdates = 0;
}

CoTask<void>
Cache::flushBlock(Addr a)
{
    Line &ln = lineFor(a);
    if (!hit(ln, a))
        co_return;
    if (isDirty(ln.state)) {
        cFlushWritebacks_.incr();
        ln.state = Moesi::Invalid;
        co_await issueTxn(TxnKind::Writeback, blockAlign(a));
    } else {
        ln.state = Moesi::Invalid;
    }
}

void
Cache::invalidateBlock(Addr a)
{
    Line &ln = lineFor(a);
    if (ln.tagValid && ln.tag == blockAlign(a))
        ln.state = Moesi::Invalid;
}

SnoopReply
Cache::onBusTxn(const BusTxn &txn)
{
    SnoopReply reply;
    const Addr blk = blockAlign(txn.addr);

    switch (txn.kind) {
      case TxnKind::UncachedRead:
      case TxnKind::UncachedWrite:
        return reply; // register space: not ours

      case TxnKind::ReadShared: {
        Line &ln = lineFor(blk);
        if (!hit(ln, blk))
            return reply;
        reply.hadCopy = true;
        switch (ln.state) {
          case Moesi::Modified:
          case Moesi::Owned:
            reply.supplied = true;
            cSnoopSupplies_.incr();
            if (transferOwnership_) {
                reply.transferOwnership = true;
                ln.state = Moesi::Shared;
            } else {
                ln.state = Moesi::Owned;
            }
            break;
          case Moesi::Exclusive:
            ln.state = Moesi::Shared;
            break;
          case Moesi::Shared:
            break;
          case Moesi::Invalid:
            break;
        }
        return reply;
      }

      case TxnKind::ReadExclusive: {
        Line &ln = lineFor(blk);
        if (!hit(ln, blk))
            return reply;
        reply.hadCopy = true;
        if (isDirty(ln.state)) {
            reply.supplied = true;
            cSnoopSupplies_.incr();
        }
        ln.state = Moesi::Invalid;
        cSnoopInvalidations_.incr();
        return reply;
      }

      case TxnKind::Upgrade: {
        Line &ln = lineFor(blk);
        if (!hit(ln, blk))
            return reply;
        // Requester holds a valid copy already; no data moves.
        reply.hadCopy = true;
        ln.state = Moesi::Invalid;
        cSnoopInvalidations_.incr();
        return reply;
      }

      case TxnKind::Update: {
        // Dragon/hybrid word update pushed by the home on behalf of a
        // writer. Invalidation backends never send these.
        Line &ln = lineFor(blk);
        if (!hit(ln, blk))
            return reply; // silently evicted: the home drops us
        if (updateThreshold_ > 0 && ln.unreadUpdates >= updateThreshold_) {
            // Hybrid flip: `updateThreshold_` consecutive updates went
            // unread, so stop absorbing — drop the copy and let the
            // writer take plain ownership. hadCopy stays false so the
            // home removes us from the sharer set.
            ln.state = Moesi::Invalid;
            ln.unreadUpdates = 0;
            reply.invalidatedOnUpdate = true;
            cSnoopInvalidations_.incr();
            return reply;
        }
        reply.hadCopy = true;
        if (isDirty(ln.state)) {
            // Sm/M holder: its pre-update block is the freshest copy, so
            // the ack supplies it (a write-missing requester's grant then
            // carries real data). The update demotes it to Sc.
            reply.supplied = true;
            cSnoopSupplies_.incr();
        }
        ln.state = Moesi::Shared; // Sc, value refreshed in place
        if (ln.unreadUpdates < 255)
            ++ln.unreadUpdates;
        return reply;
      }

      case TxnKind::Writeback: {
        Line &ln = lineFor(blk);
        if (snarfing_ && ln.tagValid && ln.tag == blk &&
            ln.state == Moesi::Invalid) {
            // Data snarfing: the frame is already allocated to this block
            // (tag match, invalid); grab the data off the bus.
            ln.state = Moesi::Shared;
            cSnarfs_.incr();
            SnoopReply r;
            r.hadCopy = true; // a copy now exists
            return r;
        }
        return reply;
      }
    }
    return reply;
}

} // namespace cni
