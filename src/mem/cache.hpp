/**
 * @file
 * Direct-mapped, write-allocate snooping MOESI cache.
 *
 * Used both for the 256 KB processor cache and for the small CNI device
 * caches (16/512 blocks). The cache is a BusAgent (its duplicated snoop
 * tags are implicit — snoops are free of processor-port contention) and a
 * requester that issues misses through a TxnIssue port, which the node
 * fabric routes to the right bus (memory bus, or across the I/O bridge).
 *
 * Timing: hits cost `hitLatency` cycles (default 1); misses cost the bus
 * arbitration wait plus the Table 2 occupancy, plus a victim writeback
 * transaction when the displaced line is dirty.
 */

#ifndef CNI_MEM_CACHE_HPP
#define CNI_MEM_CACHE_HPP

#include <functional>
#include <string>
#include <vector>

#include "bus/bus.hpp"
#include "mem/moesi.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace cni
{

/** Port through which a cache issues its bus transactions. */
using TxnIssue =
    std::function<void(const BusTxn &, std::function<void(SnoopResult)>)>;

class Cache : public BusAgent
{
  public:
    /**
     * @param eq        event queue
     * @param name      debug/stats name
     * @param numBlocks capacity in 64-byte blocks (direct mapped)
     * @param initiator who this cache belongs to (timing direction)
     */
    Cache(EventQueue &eq, std::string name, std::size_t numBlocks,
          Initiator initiator);

    /** Wire the miss path; must be set before first access. */
    void setIssuePort(TxnIssue issue) { issue_ = std::move(issue); }

    /** Enable data snarfing (Section 5.1.2). */
    void setSnarfing(bool on) { snarfing_ = on; }

    /**
     * Adaptive update/invalidate flip point (the "hybrid" backend's
     * --hybrid-threshold). Each line tracks consecutive TxnKind::Update
     * pushes absorbed without an intervening read; once `t` of them
     * piled up, the next update makes the line self-invalidate instead
     * of absorbing (SnoopReply::invalidatedOnUpdate), flipping it to
     * invalidate mode for this cache. 0 (default) never flips — the
     * pure-update "dragon" behaviour. Irrelevant under invalidation
     * backends, which never send Update transactions.
     */
    void setUpdateThreshold(int t) { updateThreshold_ = t; }

    /**
     * On snooped reads of dirty lines, pass ownership to the requester
     * (supplier downgrades to Shared, requester installs Owned) instead
     * of keeping it. A cache that stages transient data it will never
     * reuse — the CNI16Qm device cache over its memory-homed queue —
     * avoids writing back every consumed block this way; writebacks then
     * occur only when *unread* blocks overflow, matching Section 5.1.2.
     */
    void setTransferOwnership(bool on) { transferOwnership_ = on; }

    /** Coherent load touching a single block. Suspends on a miss. */
    CoTask<void> load(Addr a);

    /** Coherent store touching a single block (write-allocate). */
    CoTask<void> store(Addr a);

    /**
     * Ensure the block is present with (at least) read permission without
     * charging the hit latency — used by devices that move whole blocks.
     */
    CoTask<void> fetchBlock(Addr a, bool exclusive);

    /**
     * Explicitly write back and invalidate the line holding `a` if dirty
     * (device cache overflow path for CNI16Qm). No-op when clean/absent.
     */
    CoTask<void> flushBlock(Addr a);

    /**
     * Claim write ownership of a block that will be *fully overwritten*:
     * an address-only invalidation suffices (no data fetch), like an MBus
     * coherent-invalidate. Displaced dirty victims are written back first
     * — this is the automatic overflow path of CNI16Qm. With
     * `deferWriteback` the victim writeback is posted through a writeback
     * buffer (issued to the bus without stalling the claim), taking the
     * flush off the claimer's critical path.
     */
    CoTask<void> claimBlock(Addr a, bool deferWriteback = false);

    /** Drop a block without writeback (user-level invalidate). */
    void invalidateBlock(Addr a);

    /**
     * Install a line in a given state without bus traffic — reset-time
     * initialization (a device owns its home storage at power-on).
     */
    void
    primeLine(Addr a, Moesi state)
    {
        Line &ln = lineFor(a);
        ln.tag = blockAlign(a);
        ln.tagValid = true;
        ln.state = state;
        ln.unreadUpdates = 0;
    }

    /** Current state of the line that would hold `a` (test/debug). */
    Moesi stateOf(Addr a) const;

    /** True if the line holding `a` has a valid copy of `a`'s block. */
    bool contains(Addr a) const;

    /** Number of blocks. */
    std::size_t numBlocks() const { return lines_.size(); }

    // BusAgent interface -------------------------------------------------
    SnoopReply onBusTxn(const BusTxn &txn) override;
    const std::string &agentName() const override { return name_; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    /** Set this cache's requester id for a bus (filled into issued txns). */
    void setRequesterId(int id) { requesterId_ = id; }

    void setHitLatency(Tick t) { hitLatency_ = t; }

  private:
    struct Line
    {
        Addr tag = 0; //!< block-aligned address held (or last held)
        bool tagValid = false;
        Moesi state = Moesi::Invalid;
        /**
         * Consecutive updates absorbed without a read (saturating).
         * Only update backends ever bump it; reads and fresh installs
         * reset it (see setUpdateThreshold).
         */
        std::uint8_t unreadUpdates = 0;
    };

    Line &lineFor(Addr a);
    const Line &lineFor(Addr a) const;
    std::size_t indexOf(Addr a) const;

    /** Hit test: valid state and matching tag. */
    bool hit(const Line &ln, Addr a) const;

    CoTask<SnoopResult> refill(Addr a, bool exclusive);
    ValueCompletion<SnoopResult> issueTxn(TxnKind kind, Addr a);

    EventQueue &eq_;
    std::string name_;
    Initiator initiator_;
    std::vector<Line> lines_;
    TxnIssue issue_;
    int requesterId_ = -1;
    Tick hitLatency_ = 1;
    bool snarfing_ = false;
    bool transferOwnership_ = false;
    int updateThreshold_ = 0; //!< 0 = never self-invalidate on update
    StatSet stats_;

    // Pre-bound per-access counters (sim/stats.hpp Counter contract).
    StatSet::Counter cLoadHits_;
    StatSet::Counter cLoadMisses_;
    StatSet::Counter cStoreHits_;
    StatSet::Counter cStoreUpgrades_;
    StatSet::Counter cStoreUpgradeFills_;
    StatSet::Counter cStoreUpgradeRaces_;
    StatSet::Counter cStoreMisses_;
    StatSet::Counter cStoreRefillRaces_;
    StatSet::Counter cWritebacks_;
    StatSet::Counter cClaims_;
    StatSet::Counter cFlushWritebacks_;
    StatSet::Counter cSnoopSupplies_;
    StatSet::Counter cSnoopInvalidations_;
    StatSet::Counter cSnarfs_;
};

} // namespace cni

#endif // CNI_MEM_CACHE_HPP
