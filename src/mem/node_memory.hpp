/**
 * @file
 * Architectural data image of one node's address space.
 *
 * The simulator is transaction-level: caches and device caches track
 * coherence *state* (tags + MOESI), while the architectural data values of
 * all cachable locations live in a single per-node image. The MOESI
 * protocol serializes writers, and the single-threaded event kernel orders
 * every access, so reading/writing the image at access time always yields
 * the coherent value. Uncached device registers are NOT stored here; the
 * device models implement their semantics directly.
 */

#ifndef CNI_MEM_NODE_MEMORY_HPP
#define CNI_MEM_NODE_MEMORY_HPP

#include <array>
#include <cstring>
#include <map>

#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace cni
{

/**
 * Sparse byte-addressable backing store (allocate-on-touch pages).
 *
 * Storage is 4 KiB pages rather than cache-line blocks: the queue
 * regions the NI models stream through are dense, so page granularity
 * cuts the map from one node per 64 bytes to one per 4 KiB (~64x fewer
 * lookups and allocations), and a one-entry MRU cache makes the common
 * consecutive-access pattern a pointer compare. The cache is safe to
 * mutate from const reads because a NodeMemory is owned by one node and
 * therefore touched by exactly one shard thread.
 */
class NodeMemory
{
  public:
    void
    write(Addr addr, const void *src, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(src);
        while (n > 0) {
            auto &pg = pageFor(addr);
            const std::size_t off = addr % kPageBytes;
            const std::size_t chunk = std::min(n, kPageBytes - off);
            std::memcpy(pg.data() + off, p, chunk);
            addr += chunk;
            p += chunk;
            n -= chunk;
        }
    }

    void
    read(Addr addr, void *dst, std::size_t n) const
    {
        auto *p = static_cast<std::uint8_t *>(dst);
        while (n > 0) {
            const std::size_t off = addr % kPageBytes;
            const std::size_t chunk = std::min(n, kPageBytes - off);
            const Page *pg = findPage(pageAlign(addr));
            if (pg == nullptr) {
                std::memset(p, 0, chunk);
            } else {
                std::memcpy(p, pg->data() + off, chunk);
            }
            addr += chunk;
            p += chunk;
            n -= chunk;
        }
    }

    std::uint64_t
    read64(Addr addr) const
    {
        std::uint64_t v = 0;
        read(addr, &v, sizeof(v));
        return v;
    }

    void
    write64(Addr addr, std::uint64_t v)
    {
        write(addr, &v, sizeof(v));
    }

    std::uint32_t
    read32(Addr addr) const
    {
        std::uint32_t v = 0;
        read(addr, &v, sizeof(v));
        return v;
    }

    void
    write32(Addr addr, std::uint32_t v)
    {
        write(addr, &v, sizeof(v));
    }

  private:
    static constexpr std::size_t kPageBytes = 4096;
    using Page = std::array<std::uint8_t, kPageBytes>;

    static Addr pageAlign(Addr a) { return a & ~Addr{kPageBytes - 1}; }

    Page &
    pageFor(Addr addr)
    {
        const Addr base = pageAlign(addr);
        if (base != mruBase_ || mruPage_ == nullptr) {
            auto [it, inserted] = pages_.try_emplace(base);
            if (inserted)
                it->second.fill(0);
            mruBase_ = base;
            mruPage_ = &it->second;
        }
        return *mruPage_;
    }

    const Page *
    findPage(Addr base) const
    {
        if (base == mruBase_ && mruPage_ != nullptr)
            return mruPage_;
        auto it = pages_.find(base);
        if (it == pages_.end())
            return nullptr;
        mruBase_ = base;
        mruPage_ = const_cast<Page *>(&it->second);
        return &it->second;
    }

    // Ordered map, per the determinism lint: this store is only ever
    // point-looked-up today, but an unordered container is one innocent
    // for-loop away from hash-order-dependent behavior. Map nodes are
    // address-stable, so the MRU pointer never dangles (pages are never
    // erased).
    std::map<Addr, Page> pages_;
    mutable Addr mruBase_ = ~Addr{0};
    mutable Page *mruPage_ = nullptr;
};

} // namespace cni

#endif // CNI_MEM_NODE_MEMORY_HPP
