/**
 * @file
 * Architectural data image of one node's address space.
 *
 * The simulator is transaction-level: caches and device caches track
 * coherence *state* (tags + MOESI), while the architectural data values of
 * all cachable locations live in a single per-node image. The MOESI
 * protocol serializes writers, and the single-threaded event kernel orders
 * every access, so reading/writing the image at access time always yields
 * the coherent value. Uncached device registers are NOT stored here; the
 * device models implement their semantics directly.
 */

#ifndef CNI_MEM_NODE_MEMORY_HPP
#define CNI_MEM_NODE_MEMORY_HPP

#include <array>
#include <cstring>
#include <map>

#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace cni
{

/** Sparse byte-addressable backing store (allocate-on-touch blocks). */
class NodeMemory
{
  public:
    void
    write(Addr addr, const void *src, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(src);
        while (n > 0) {
            auto &blk = blockFor(addr);
            const std::size_t off = addr % kBlockBytes;
            const std::size_t chunk = std::min(n, kBlockBytes - off);
            std::memcpy(blk.data() + off, p, chunk);
            addr += chunk;
            p += chunk;
            n -= chunk;
        }
    }

    void
    read(Addr addr, void *dst, std::size_t n) const
    {
        auto *p = static_cast<std::uint8_t *>(dst);
        while (n > 0) {
            const std::size_t off = addr % kBlockBytes;
            const std::size_t chunk = std::min(n, kBlockBytes - off);
            auto it = blocks_.find(blockAlign(addr));
            if (it == blocks_.end()) {
                std::memset(p, 0, chunk);
            } else {
                std::memcpy(p, it->second.data() + off, chunk);
            }
            addr += chunk;
            p += chunk;
            n -= chunk;
        }
    }

    std::uint64_t
    read64(Addr addr) const
    {
        std::uint64_t v = 0;
        read(addr, &v, sizeof(v));
        return v;
    }

    void
    write64(Addr addr, std::uint64_t v)
    {
        write(addr, &v, sizeof(v));
    }

    std::uint32_t
    read32(Addr addr) const
    {
        std::uint32_t v = 0;
        read(addr, &v, sizeof(v));
        return v;
    }

    void
    write32(Addr addr, std::uint32_t v)
    {
        write(addr, &v, sizeof(v));
    }

  private:
    using Block = std::array<std::uint8_t, kBlockBytes>;

    Block &
    blockFor(Addr addr)
    {
        auto [it, inserted] = blocks_.try_emplace(blockAlign(addr));
        if (inserted)
            it->second.fill(0);
        return it->second;
    }

    // Ordered map, per the determinism lint: this store is only ever
    // point-looked-up today, but an unordered container is one innocent
    // for-loop away from hash-order-dependent behavior.
    std::map<Addr, Block> blocks_;
};

} // namespace cni

#endif // CNI_MEM_NODE_MEMORY_HPP
