/**
 * @file
 * Shared infrastructure for the five macrobenchmarks (Section 4.2).
 *
 * Each macrobenchmark is a communication skeleton: the message sizes,
 * fan-outs, phase structure, and burstiness of the original application
 * are reproduced exactly as the paper describes them, while local
 * computation is charged as calibrated processor-cycle delays. This
 * preserves what Figure 8 measures — the interaction of each traffic
 * pattern with the NI design — without interpreting SPARC binaries.
 */

#ifndef CNI_APPS_COMMON_HPP
#define CNI_APPS_COMMON_HPP

#include <memory>
#include <vector>

#include "core/machine.hpp"

namespace cni
{

/** Handler id namespace for application messages. */
constexpr std::uint32_t kAppHandlerBase = 1000;

/**
 * A sense-reversing message barrier: every node reports to node 0, which
 * releases everyone. Costs 2(P-1) real messages per episode, so barrier
 * overhead scales with the NI like everything else.
 */
class AmBarrier
{
  public:
    explicit AmBarrier(Machine &sys, std::uint32_t handlerId);

    /** Enter the barrier on `node`; resumes when all nodes arrived. */
    CoTask<void> wait(NodeId node);

  private:
    CoTask<void> release();

    Machine &sys_;
    std::uint32_t handlerId_;
    int arrived_ = 0;
    std::uint64_t episode_ = 0;
    std::vector<std::uint64_t> released_;
};

/** Aggregate outcome of one macrobenchmark run (validation + Figure 8). */
struct AppResult
{
    Tick ticks = 0;              //!< total simulated execution time
    std::uint64_t userMsgs = 0;  //!< user messages sent
    std::uint64_t checksum = 0;  //!< app-specific result for validation
    Tick memBusOccupied = 0;     //!< sum of memory-bus busy cycles
};

} // namespace cni

#endif // CNI_APPS_COMMON_HPP
