/**
 * @file
 * Umbrella header: the five macrobenchmarks of Section 4.2.
 */

#ifndef CNI_APPS_APPS_HPP
#define CNI_APPS_APPS_HPP

#include "apps/appbt.hpp"
#include "apps/em3d.hpp"
#include "apps/gauss.hpp"
#include "apps/moldyn.hpp"
#include "apps/spsolve.hpp"

namespace cni
{

/**
 * Run macrobenchmark `name` on a fresh machine built from `spec`.
 * `seed` != 0 overrides the workload-synthesis seed of the randomized
 * apps (em3d, spsolve); 0 keeps each app's paper-calibrated default.
 */
AppResult runMacrobenchmark(const std::string &name,
                            const MachineSpec &spec,
                            std::uint64_t seed = 0);

/** The five macrobenchmark names, in the paper's order. */
const std::vector<std::string> &macrobenchmarkNames();

} // namespace cni

#endif // CNI_APPS_APPS_HPP
