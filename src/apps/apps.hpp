/**
 * @file
 * Umbrella header: the five macrobenchmarks of Section 4.2.
 */

#ifndef CNI_APPS_APPS_HPP
#define CNI_APPS_APPS_HPP

#include "apps/appbt.hpp"
#include "apps/em3d.hpp"
#include "apps/gauss.hpp"
#include "apps/moldyn.hpp"
#include "apps/spsolve.hpp"

namespace cni
{

/** Run macrobenchmark `name` on a fresh system built from `cfg`. */
AppResult runMacrobenchmark(const std::string &name,
                            const SystemConfig &cfg);

/** The five macrobenchmark names, in the paper's order. */
const std::vector<std::string> &macrobenchmarkNames();

} // namespace cni

#endif // CNI_APPS_APPS_HPP
