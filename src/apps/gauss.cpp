#include "apps/gauss.hpp"

namespace cni
{

namespace
{

constexpr std::uint32_t kPivotHandler = kAppHandlerBase + 20;
constexpr std::uint32_t kGaussBarrier = kAppHandlerBase + 22;

struct GaussState
{
    Machine *sys = nullptr;
    GaussParams params;
    std::vector<std::uint64_t> pivotSeen; // per node: pivots received
};

CoTask<void>
nodeProgram(GaussState &st, AmBarrier &bar, NodeId me)
{
    Machine &sys = *st.sys;
    const int n = sys.numNodes();
    const std::size_t rowBytes = std::size_t(st.params.columns) * 4;
    std::vector<std::uint8_t> row(rowBytes, std::uint8_t(me));

    for (int k = 0; k < st.params.pivots; ++k) {
        const NodeId owner = k % n;
        if (owner == me) {
            // Compute the pivot row, then broadcast it one-to-all.
            co_await sys.proc(me).delay(st.params.eliminateCyclesPerRow);
            for (NodeId d = 0; d < n; ++d) {
                if (d == me)
                    continue;
                co_await sys.msg(me).send(d, kPivotHandler, row.data(),
                                          rowBytes,
                                          static_cast<std::uint64_t>(k));
            }
        } else {
            // Wait for this pivot's row to arrive.
            co_await sys.msg(me).pollUntil([&st, me, k] {
                return st.pivotSeen[me] >= std::uint64_t(k) + 1;
            });
        }
        // Local elimination against the pivot row.
        for (int r = 0; r < st.params.rowsPerNode; ++r)
            co_await sys.proc(me).delay(st.params.eliminateCyclesPerRow);
    }
    co_await bar.wait(me);
}

} // namespace

AppResult
runGauss(Machine &sys, const GaussParams &p)
{
    auto st = std::make_unique<GaussState>();
    st->sys = &sys;
    st->params = p;
    st->pivotSeen.assign(sys.numNodes(), 0);

    AmBarrier bar(sys, kGaussBarrier);

    for (NodeId i = 0; i < sys.numNodes(); ++i) {
        sys.msg(i).registerHandler(
            kPivotHandler,
            [&st = *st, i](const UserMsg &u) -> CoTask<void> {
                // Pivot k received: copy charged by the messaging layer;
                // remember the highest pivot index seen.
                st.pivotSeen[i] =
                    std::max(st.pivotSeen[i], u.userTag + 1);
                co_return;
            });
    }

    for (NodeId i = 0; i < sys.numNodes(); ++i)
        sys.spawn(i, nodeProgram(*st, bar, i));

    AppResult res;
    res.ticks = sys.run();
    res.userMsgs = sys.aggregateStats().counter("user_sends");
    res.checksum = st->pivotSeen[ (sys.numNodes() > 1) ? 1 : 0 ];
    res.memBusOccupied = sys.memBusOccupiedCycles();
    return res;
}

} // namespace cni
