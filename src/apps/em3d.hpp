/**
 * @file
 * em3d: three-dimensional electromagnetic wave propagation (Section 4.2,
 * Table 3). Iterates over a bipartite graph of E and H nodes with
 * directed edges; each graph node sends two integers (12-byte payload
 * messages) to its neighbours through a custom update protocol. Several
 * update messages are in flight at once — bursty fine-grain traffic.
 *
 * Paper input: 1K nodes, degree 5, 10% remote, span 6, 10 iterations.
 */

#ifndef CNI_APPS_EM3D_HPP
#define CNI_APPS_EM3D_HPP

#include "apps/common.hpp"

namespace cni
{

struct Em3dParams
{
    int graphNodes = 1024;    //!< total graph nodes (half E, half H)
    int degree = 5;           //!< edges per node
    double remoteFraction = 0.10;
    int span = 6;             //!< remote edges reach +-span machine nodes
    int iterations = 10;
    Tick updateCycles = 8;    //!< per-edge local update computation
    std::uint64_t seed = 777;
};

AppResult runEm3d(Machine &sys, const Em3dParams &p = {});

} // namespace cni

#endif // CNI_APPS_EM3D_HPP
