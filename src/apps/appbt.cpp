#include "apps/appbt.hpp"

namespace cni
{

namespace
{

constexpr std::uint32_t kRequestHandler = kAppHandlerBase + 50;
constexpr std::uint32_t kResponseHandler = kAppHandlerBase + 51;
constexpr std::uint32_t kAppbtBarrier = kAppHandlerBase + 53;

struct AppbtState
{
    Machine *sys = nullptr;
    AppbtParams params;
    std::vector<std::uint64_t> responses; // per node, monotonic
    std::vector<std::vector<NodeId>> neighbors;
};

/** 4x2x2 processor grid neighbours (faces of each subcube). */
std::vector<NodeId>
gridNeighbors(NodeId me, int n)
{
    // Factor n into a 3D grid as evenly as possible (paper: 16 nodes).
    int dx = 1, dy = 1, dz = 1;
    for (int f = 2; dx * dy * dz < n; ) {
        if (dx <= dy && dx <= dz)
            dx *= f;
        else if (dy <= dz)
            dy *= f;
        else
            dz *= f;
    }
    const int x = me % dx;
    const int y = (me / dx) % dy;
    const int z = me / (dx * dy);
    std::vector<NodeId> out;
    auto add = [&](int nx, int ny, int nz) {
        if (nx < 0 || nx >= dx || ny < 0 || ny >= dy || nz < 0 || nz >= dz)
            return;
        const NodeId id = nx + ny * dx + nz * dx * dy;
        if (id != me && id < n)
            out.push_back(id);
    };
    add(x - 1, y, z);
    add(x + 1, y, z);
    add(x, y - 1, z);
    add(x, y + 1, z);
    add(x, y, z - 1);
    add(x, y, z + 1);
    return out;
}

CoTask<void>
nodeProgram(AppbtState &st, AmBarrier &bar, NodeId me)
{
    Machine &sys = *st.sys;
    std::uint64_t expected = 0;
    for (int it = 0; it < st.params.iterations; ++it) {
        co_await sys.proc(me).delay(st.params.computePerIter);
        // Boundary exchange: request each neighbour's face blocks; the
        // shared-memory protocol's hot spot (Section 5.2) sends every
        // node an extra round of requests to node 0.
        for (NodeId nb : st.neighbors[me]) {
            for (int b = 0; b < st.params.blocksPerNeighbor; ++b) {
                std::uint8_t req[12] = {};
                co_await sys.msg(me).send(nb, kRequestHandler, req,
                                          sizeof(req));
                expected += 1;
                // Keep a few requests outstanding: poll opportunistically.
                co_await sys.msg(me).poll(2);
            }
        }
        if (me != 0) {
            for (int b = 0; b < st.params.blocksPerNeighbor; ++b) {
                std::uint8_t req[12] = {};
                co_await sys.msg(me).send(0, kRequestHandler, req,
                                          sizeof(req));
                expected += 1;
                co_await sys.msg(me).poll(2);
            }
        }
        co_await sys.msg(me).pollUntil([&st, me, expected] {
            return st.responses[me] >= expected;
        });
        co_await bar.wait(me);
    }
}

} // namespace

AppResult
runAppbt(Machine &sys, const AppbtParams &p)
{
    auto st = std::make_unique<AppbtState>();
    st->sys = &sys;
    st->params = p;
    const int n = sys.numNodes();
    st->responses.assign(n, 0);
    st->neighbors.resize(n);
    for (NodeId i = 0; i < n; ++i)
        st->neighbors[i] = gridNeighbors(i, n);

    for (NodeId i = 0; i < n; ++i) {
        // Home node: service a block request with a 128-byte response.
        sys.msg(i).registerHandler(
            kRequestHandler,
            [&st = *st, i](const UserMsg &u) -> CoTask<void> {
                Machine &sys = *st.sys;
                co_await sys.proc(i).delay(st.params.homeServiceCycles);
                std::vector<std::uint8_t> block(st.params.blockBytes,
                                                std::uint8_t(i));
                co_await sys.msg(i).send(u.src, kResponseHandler,
                                         block.data(), block.size());
            });
        sys.msg(i).registerHandler(
            kResponseHandler,
            [&st = *st, i](const UserMsg &) -> CoTask<void> {
                st.responses[i] += 1;
                co_return;
            });
    }

    AmBarrier bar(sys, kAppbtBarrier);
    for (NodeId i = 0; i < n; ++i)
        sys.spawn(i, nodeProgram(*st, bar, i));

    AppResult res;
    res.ticks = sys.run();
    res.userMsgs = sys.aggregateStats().counter("user_sends");
    std::uint64_t sum = 0;
    for (auto v : st->responses)
        sum += v;
    res.checksum = sum;
    res.memBusOccupied = sys.memBusOccupiedCycles();
    return res;
}

} // namespace cni
