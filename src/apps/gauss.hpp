/**
 * @file
 * gauss: message-passing Gaussian elimination (Section 4.2, Table 3).
 * The key communication pattern is a one-to-all broadcast of the pivot
 * row — two kilobytes for the paper's 512x512 matrix — followed by local
 * elimination on each node's rows.
 */

#ifndef CNI_APPS_GAUSS_HPP
#define CNI_APPS_GAUSS_HPP

#include "apps/common.hpp"

namespace cni
{

struct GaussParams
{
    int columns = 512;          //!< matrix dimension (row = 4*columns B)
    int pivots = 48;            //!< pivot steps simulated (scaled down)
    Tick eliminateCyclesPerRow = 96; //!< local update of one row
    int rowsPerNode = 32;       //!< rows each node eliminates per pivot
};

AppResult runGauss(Machine &sys, const GaussParams &p = {});

} // namespace cni

#endif // CNI_APPS_GAUSS_HPP
