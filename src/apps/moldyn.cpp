#include "apps/moldyn.hpp"

namespace cni
{

namespace
{

constexpr std::uint32_t kReduceHandler = kAppHandlerBase + 40;
constexpr std::uint32_t kMoldynBarrier = kAppHandlerBase + 42;

struct MoldynState
{
    Machine *sys = nullptr;
    MoldynParams params;
    std::vector<std::uint64_t> chunksReceived; // per node, monotonic
};

CoTask<void>
nodeProgram(MoldynState &st, AmBarrier &bar, NodeId me)
{
    Machine &sys = *st.sys;
    const int n = sys.numNodes();
    std::vector<std::uint8_t> chunk(st.params.reduceBytes,
                                    std::uint8_t(me));
    std::uint64_t expected = 0;

    for (int it = 0; it < st.params.iterations; ++it) {
        // Non-bonded force computation (the ~60% that is not reduction).
        co_await sys.proc(me).delay(st.params.forceComputeCycles);

        // Bulk reduction: P rounds, each shipping 1.5 KB to the ring
        // neighbour and combining the chunk that arrives from the other
        // side (Section 4.2 / the PPOPP'95 reduction protocol).
        for (int r = 0; r < n; ++r) {
            co_await sys.msg(me).send((me + 1) % n, kReduceHandler,
                                      chunk.data(), chunk.size());
            expected += 1;
            co_await sys.msg(me).pollUntil([&st, me, expected] {
                return st.chunksReceived[me] >= expected;
            });
            co_await sys.proc(me).delay(st.params.reduceOpCycles);
        }
        co_await bar.wait(me);
    }
}

} // namespace

AppResult
runMoldyn(Machine &sys, const MoldynParams &p)
{
    auto st = std::make_unique<MoldynState>();
    st->sys = &sys;
    st->params = p;
    st->chunksReceived.assign(sys.numNodes(), 0);

    for (NodeId i = 0; i < sys.numNodes(); ++i) {
        sys.msg(i).registerHandler(
            kReduceHandler,
            [&st = *st, i](const UserMsg &) -> CoTask<void> {
                st.chunksReceived[i] += 1;
                co_return;
            });
    }

    AmBarrier bar(sys, kMoldynBarrier);
    for (NodeId i = 0; i < sys.numNodes(); ++i)
        sys.spawn(i, nodeProgram(*st, bar, i));

    AppResult res;
    res.ticks = sys.run();
    res.userMsgs = sys.aggregateStats().counter("user_sends");
    std::uint64_t sum = 0;
    for (auto v : st->chunksReceived)
        sum += v;
    res.checksum = sum;
    res.memBusOccupied = sys.memBusOccupiedCycles();
    return res;
}

} // namespace cni
