#include "apps/apps.hpp"

#include "sim/logging.hpp"

namespace cni
{

const std::vector<std::string> &
macrobenchmarkNames()
{
    static const std::vector<std::string> names = {
        "spsolve", "gauss", "em3d", "moldyn", "appbt",
    };
    return names;
}

AppResult
runMacrobenchmark(const std::string &name, const SystemConfig &cfg)
{
    System sys(cfg);
    if (name == "spsolve")
        return runSpsolve(sys);
    if (name == "gauss")
        return runGauss(sys);
    if (name == "em3d")
        return runEm3d(sys);
    if (name == "moldyn")
        return runMoldyn(sys);
    if (name == "appbt")
        return runAppbt(sys);
    cni_fatal("unknown macrobenchmark '%s'", name.c_str());
}

} // namespace cni
