#include "apps/apps.hpp"

#include "sim/logging.hpp"
#include "sim/report.hpp"

namespace cni
{

const std::vector<std::string> &
macrobenchmarkNames()
{
    static const std::vector<std::string> names = {
        "spsolve", "gauss", "em3d", "moldyn", "appbt",
    };
    return names;
}

AppResult
runMacrobenchmark(const std::string &name, const MachineSpec &spec,
                  std::uint64_t seed)
{
    Machine sys(spec);
    auto finish = [&](AppResult r) {
        if (report::enabled())
            report::add(name + " " + spec.label(), sys.report());
        return r;
    };
    if (name == "spsolve") {
        SpsolveParams p;
        if (seed)
            p.seed = seed;
        return finish(runSpsolve(sys, p));
    }
    if (name == "gauss")
        return finish(runGauss(sys));
    if (name == "em3d") {
        Em3dParams p;
        if (seed)
            p.seed = seed;
        return finish(runEm3d(sys, p));
    }
    if (name == "moldyn")
        return finish(runMoldyn(sys));
    if (name == "appbt")
        return finish(runAppbt(sys));
    cni_fatal("unknown macrobenchmark '%s'", name.c_str());
}

} // namespace cni
