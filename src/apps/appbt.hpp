/**
 * @file
 * appbt: the NAS BT computational fluid dynamics application (Section
 * 4.2, Table 3). A cube of cells divided into subcubes among processors;
 * communication is near-neighbour boundary exchange through an
 * invalidation-based shared-memory protocol — modelled as request-
 * response traffic moving 128-byte shared-memory blocks. One processor
 * is a hot spot receiving roughly twice as many messages as the others
 * (Section 5.2).
 */

#ifndef CNI_APPS_APPBT_HPP
#define CNI_APPS_APPBT_HPP

#include "apps/common.hpp"

namespace cni
{

struct AppbtParams
{
    int iterations = 4;
    int blocksPerNeighbor = 24;    //!< boundary blocks fetched per face
    std::size_t blockBytes = 128;  //!< shared-memory block size
    Tick computePerIter = 30000;   //!< local stencil work per iteration
    Tick homeServiceCycles = 20;   //!< protocol handler work per request
};

AppResult runAppbt(Machine &sys, const AppbtParams &p = {});

} // namespace cni

#endif // CNI_APPS_APPBT_HPP
