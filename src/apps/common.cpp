#include "apps/common.hpp"

namespace cni
{

AmBarrier::AmBarrier(Machine &sys, std::uint32_t handlerId)
    : sys_(sys), handlerId_(handlerId), released_(sys.numNodes(), 0)
{
    const int n = sys.numNodes();
    // Node 0 collects arrivals (including its own, counted in wait()) and
    // broadcasts the release when everyone has arrived.
    sys.msg(0).registerHandler(
        handlerId_, [this, n](const UserMsg &) -> CoTask<void> {
            ++arrived_;
            if (arrived_ == n)
                co_await release();
        });
    for (NodeId i = 1; i < n; ++i) {
        sys.msg(i).registerHandler(
            handlerId_ + 1, [this, i](const UserMsg &u) -> CoTask<void> {
                released_[i] = u.userTag;
                co_return;
            });
    }
}

CoTask<void>
AmBarrier::release()
{
    arrived_ = 0;
    ++episode_;
    released_[0] = episode_;
    for (NodeId d = 1; d < sys_.numNodes(); ++d)
        co_await sys_.msg(0).send(d, handlerId_ + 1, episode_);
}

CoTask<void>
AmBarrier::wait(NodeId node)
{
    const std::uint64_t target = released_[node] + 1;
    if (node == 0) {
        ++arrived_;
        if (arrived_ == sys_.numNodes())
            co_await release();
        co_await sys_.msg(0).pollUntil(
            [this, target] { return released_[0] >= target; });
        co_return;
    }
    co_await sys_.msg(node).send(0, handlerId_);
    co_await sys_.msg(node).pollUntil(
        [this, node, target] { return released_[node] >= target; });
}

} // namespace cni
