#include "apps/spsolve.hpp"

#include <memory>

#include "sim/logging.hpp"
#include "sim/random.hpp"

namespace cni
{

namespace
{

constexpr std::uint32_t kEdgeHandler = kAppHandlerBase + 10;

/** The DAG and the solver's dynamic state, shared by every node program. */
struct SpsolveState
{
    std::vector<std::vector<int>> outEdges; // per element
    std::vector<int> indeg;
    std::vector<int> pending; // remaining in-count per element
    int completed = 0;
    int total = 0;
    Machine *sys = nullptr;
    SpsolveParams params;

    /// Elements are distributed in chunks of kChunk: successors within an
    /// edge span of 64 land on the next few nodes, so remote messages are
    /// both frequent and bursty toward a handful of destinations — the
    /// traffic pattern Section 4.2 describes.
    static constexpr int kChunk = 16;

    NodeId
    ownerOf(int e) const
    {
        return (e / kChunk) % sys->numNodes();
    }

    /** Element `e` received one input; fire it when ready. */
    CoTask<void>
    arrive(int e)
    {
        Proc &p = sys->proc(ownerOf(e));
        co_await p.delay(params.addCycles); // the double-word addition
        if (--pending[e] > 0)
            co_return;
        ++completed;
        // Propagate down every out-edge: remote edges are 12-byte active
        // messages, local edges invoke the handler directly.
        for (int succ : outEdges[e]) {
            const NodeId dst = ownerOf(succ);
            if (dst == ownerOf(e)) {
                co_await p.delay(4); // local call overhead
                co_await arrive(succ);
            } else {
                std::uint8_t payload[12] = {};
                payload[0] = static_cast<std::uint8_t>(succ & 0xff);
                co_await sys->msg(ownerOf(e))
                    .send(dst, kEdgeHandler, payload, sizeof(payload),
                          static_cast<std::uint64_t>(succ));
            }
        }
    }
};

CoTask<void>
nodeProgram(SpsolveState &st, NodeId me)
{
    // Fire this node's sources, interleaving polls so incoming handler
    // work proceeds concurrently (several messages in flight).
    for (int e = 0; e < st.total; ++e) {
        if (st.ownerOf(e) == me && st.indeg[e] == 0) {
            st.pending[e] = 1; // one synthetic arrival triggers it
            co_await st.arrive(e);
            co_await st.sys->msg(me).poll();
        }
    }
    co_await st.sys->msg(me).pollUntil(
        [&st] { return st.completed >= st.total; });
}

} // namespace

AppResult
runSpsolve(Machine &sys, const SpsolveParams &p)
{
    auto st = std::make_unique<SpsolveState>();
    st->sys = &sys;
    st->params = p;
    st->total = p.elements;
    st->outEdges.resize(p.elements);
    st->indeg.assign(p.elements, 0);

    // Deterministic random DAG: edges go to strictly larger ids within a
    // bounded span, so the graph is acyclic with mostly short edges.
    Rng rng(p.seed);
    for (int e = 0; e < p.elements; ++e) {
        const int deg = 1 + static_cast<int>(rng.below(p.maxOutDegree));
        for (int k = 0; k < deg; ++k) {
            const int hi = std::min(p.elements - 1, e + p.edgeSpan);
            if (hi <= e)
                continue;
            const int succ =
                e + 1 + static_cast<int>(rng.below(hi - e));
            st->outEdges[e].push_back(succ);
            st->indeg[succ] += 1;
        }
    }
    st->pending = st->indeg;

    // Handler: one DAG edge arrival.
    for (NodeId n = 0; n < sys.numNodes(); ++n) {
        sys.msg(n).registerHandler(
            kEdgeHandler, [&st = *st](const UserMsg &u) -> CoTask<void> {
                co_await st.arrive(static_cast<int>(u.userTag));
            });
    }

    for (NodeId n = 0; n < sys.numNodes(); ++n)
        sys.spawn(n, nodeProgram(*st, n));

    AppResult res;
    res.ticks = sys.run();
    res.checksum = static_cast<std::uint64_t>(st->completed);
    res.userMsgs = sys.aggregateStats().counter("user_sends");
    res.memBusOccupied = sys.memBusOccupiedCycles();
    return res;
}

} // namespace cni
