#include "apps/em3d.hpp"

#include "sim/random.hpp"

namespace cni
{

namespace
{

constexpr std::uint32_t kUpdateHandler = kAppHandlerBase + 30;
constexpr std::uint32_t kEm3dBarrier = kAppHandlerBase + 32;

struct Em3dState
{
    Machine *sys = nullptr;
    Em3dParams params;
    /// remoteEdges[phase][node] = list of destination machine nodes, one
    /// entry per remote graph edge owned by `node` in that phase.
    std::vector<std::vector<std::vector<NodeId>>> remoteEdges;
    /// localEdges[phase][node] = count of local updates.
    std::vector<std::vector<int>> localEdges;
    /// expected[phase][node] = remote updates arriving per iteration.
    std::vector<std::vector<int>> expected;
    /// received[node] = remote updates received so far (monotonic).
    std::vector<std::uint64_t> received;
};

CoTask<void>
nodeProgram(Em3dState &st, AmBarrier &bar, NodeId me)
{
    Machine &sys = *st.sys;
    std::uint64_t expectedSoFar = 0;
    for (int it = 0; it < st.params.iterations; ++it) {
        for (int phase = 0; phase < 2; ++phase) { // E then H
            // Local updates.
            co_await sys.proc(me).delay(
                Tick(st.localEdges[phase][me]) * st.params.updateCycles);
            // Remote updates: 12-byte active messages, many in flight.
            for (NodeId dst : st.remoteEdges[phase][me]) {
                std::uint8_t payload[12] = {};
                co_await sys.msg(me).send(dst, kUpdateHandler, payload,
                                          sizeof(payload));
            }
            // Wait for this phase's inbound updates.
            expectedSoFar += st.expected[phase][me];
            co_await sys.msg(me).pollUntil([&st, me, expectedSoFar] {
                return st.received[me] >= expectedSoFar;
            });
            co_await bar.wait(me);
        }
    }
}

} // namespace

AppResult
runEm3d(Machine &sys, const Em3dParams &p)
{
    auto st = std::make_unique<Em3dState>();
    st->sys = &sys;
    st->params = p;
    const int n = sys.numNodes();
    st->remoteEdges.assign(2, std::vector<std::vector<NodeId>>(n));
    st->localEdges.assign(2, std::vector<int>(n, 0));
    st->expected.assign(2, std::vector<int>(n, 0));
    st->received.assign(n, 0);

    // Build the bipartite graph: graph node g lives on machine node g % n;
    // E nodes update in phase 0, H nodes in phase 1.
    Rng rng(p.seed);
    for (int g = 0; g < p.graphNodes; ++g) {
        const int phase = (g < p.graphNodes / 2) ? 0 : 1;
        const NodeId owner = g % n;
        for (int e = 0; e < p.degree; ++e) {
            if (rng.chance(p.remoteFraction)) {
                const int offset = static_cast<int>(
                    rng.range(1, std::max(1, p.span)));
                const NodeId dst = (owner + offset) % n;
                if (dst == owner) {
                    st->localEdges[phase][owner] += 1;
                    continue;
                }
                st->remoteEdges[phase][owner].push_back(dst);
                st->expected[phase][dst] += 1;
            } else {
                st->localEdges[phase][owner] += 1;
            }
        }
    }

    for (NodeId i = 0; i < n; ++i) {
        sys.msg(i).registerHandler(
            kUpdateHandler,
            [&st = *st, i](const UserMsg &) -> CoTask<void> {
                st.received[i] += 1;
                co_await st.sys->proc(i).delay(st.params.updateCycles);
            });
    }

    AmBarrier bar(sys, kEm3dBarrier);
    for (NodeId i = 0; i < n; ++i)
        sys.spawn(i, nodeProgram(*st, bar, i));

    AppResult res;
    res.ticks = sys.run();
    res.userMsgs = sys.aggregateStats().counter("user_sends");
    std::uint64_t sum = 0;
    for (NodeId i = 0; i < n; ++i)
        sum += st->received[i];
    res.checksum = sum;
    res.memBusOccupied = sys.memBusOccupiedCycles();
    return res;
}

} // namespace cni
