/**
 * @file
 * moldyn: molecular dynamics in the style of CHARMM's non-bonded force
 * calculation (Section 4.2, Table 3). The main communication is a custom
 * bulk reduction protocol — roughly 40% of total time under NI2w — whose
 * every execution iterates as many times as there are processors, each
 * iteration sending 1.5 KB to the same neighbouring processor.
 */

#ifndef CNI_APPS_MOLDYN_HPP
#define CNI_APPS_MOLDYN_HPP

#include "apps/common.hpp"

namespace cni
{

struct MoldynParams
{
    int iterations = 8;          //!< outer timesteps (paper: 30, scaled)
    std::size_t reduceBytes = 1536; //!< per-round bulk transfer (1.5 KB)
    Tick forceComputeCycles = 26000; //!< non-bonded force work per step
    Tick reduceOpCycles = 400;   //!< local combine per reduction round
};

AppResult runMoldyn(Machine &sys, const MoldynParams &p = {});

} // namespace cni

#endif // CNI_APPS_MOLDYN_HPP
