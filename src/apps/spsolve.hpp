/**
 * @file
 * spsolve: a very fine-grained iterative sparse-matrix solver (Section
 * 4.2, Table 3). Active messages propagate down the edges of a directed
 * acyclic graph; all computation happens in the handlers. Each message
 * carries a 12-byte payload and the per-message computation is one
 * double-word addition, so messaging overhead dominates. Several active
 * messages can be in flight at once, creating bursty traffic.
 */

#ifndef CNI_APPS_SPSOLVE_HPP
#define CNI_APPS_SPSOLVE_HPP

#include "apps/common.hpp"

namespace cni
{

struct SpsolveParams
{
    int elements = 3720;   //!< DAG nodes (paper's input: 3720 elements)
    int maxOutDegree = 3;  //!< out-edges per element
    int edgeSpan = 64;     //!< targets drawn from the next `edgeSpan` ids
    Tick addCycles = 6;    //!< one double-word addition + handler body
    std::uint64_t seed = 12345;
};

/** Run spsolve on `sys`; spawns all node programs and runs to completion. */
AppResult runSpsolve(Machine &sys, const SpsolveParams &p = {});

} // namespace cni

#endif // CNI_APPS_SPSOLVE_HPP
