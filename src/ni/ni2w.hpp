/**
 * @file
 * NI2w: the conventional, CM-5-style network interface (Table 1).
 *
 * All processor interaction is through uncached device registers:
 *  - send: uncached load of STATUS (send-ok bit), then one uncached
 *    8-byte store per message word into SEND_DATA, then a store to
 *    SEND_COMMIT that moves the staged message into the hardware send
 *    FIFO;
 *  - receive: uncached load of STATUS (recv-ready bit), then one uncached
 *    8-byte load per message word from RECV_DATA with CM-5 clear-on-read
 *    semantics (the final word's read pops the hardware receive FIFO).
 *
 * The device is always a bus slave: it never arbitrates for any bus.
 * Hardware FIFOs are small (kNi2w*FifoMsgs), so bursty traffic forces the
 * software layer to drain and buffer messages in user memory.
 */

#ifndef CNI_NI_NI2W_HPP
#define CNI_NI_NI2W_HPP

#include <deque>

#include "ni/net_iface.hpp"

namespace cni
{

class Ni2w : public NetIface
{
  public:
    Ni2w(EventQueue &eq, NodeId node, CoherenceDomain &coh, Network &net,
         NodeMemory &mem, const std::string &name);

    CoTask<bool> trySend(Proc &p, NetMsg msg, int ctx) override;
    CoTask<bool> tryRecv(Proc &p, NetMsg &out, int ctx) override;

    const std::string &modelName() const override { return model_; }

    // BusAgent ------------------------------------------------------------
    SnoopReply onBusTxn(const BusTxn &txn) override;

    // NiPort --------------------------------------------------------------
    bool netDeliver(const NetMsg &msg) override;

  protected:
    CoTask<bool> engineStep() override;

  private:
    std::uint64_t statusWord() const;

    std::string model_ = "NI2w";
    std::deque<NetMsg> sendFifo_; //!< staged-and-committed outgoing
    std::deque<NetMsg> recvFifo_; //!< accepted incoming
    std::deque<NetMsg> staged_;   //!< committed by driver, awaiting the
                                  //!< SEND_COMMIT store to reach the device

    // Pre-bound per-operation counters (sim/stats.hpp Counter contract).
    StatSet::Counter cSendFull_;
    StatSet::Counter cSends_;
    StatSet::Counter cRecvEmptyPolls_;
    StatSet::Counter cRecvs_;
    StatSet::Counter cRecvRefused_;
};

} // namespace cni

#endif // CNI_NI_NI2W_HPP
