/**
 * @file
 * The cachable-queue CNI family: CNI16Q, CNI512Q, and CNI16Qm (Table 1).
 *
 * Message data moves through per-context cachable queues of 64-byte
 * coherent blocks, four blocks (one 256-byte network message) per slot:
 *
 *  - The SEND queue is device-homed. The sender checks space against a
 *    lazy shadow of the device's head pointer (refreshing it with an
 *    uncached load only when the queue looks full), writes the message
 *    with ordinary cached stores, and signals the device with one
 *    uncached message-ready store. The device counts pending messages,
 *    pulls the blocks out of the processor cache with coherent reads —
 *    starting early via virtual polling: the snooped invalidation for
 *    block k+1 proves block k is complete — and injects.
 *
 *  - The RECEIVE queue is device-homed for CNI16Q/CNI512Q and homed in
 *    MAIN MEMORY for CNI16Qm (with a small device cache whose conflict
 *    writebacks implement the automatic overflow of Section 3). The
 *    device claims each block with an address-only invalidation, writes
 *    the payload, and writes the header word (carrying the sense-encoded
 *    message valid bit) last. The receiver polls the header word of the
 *    head slot — a cache hit while the queue is empty — and never writes
 *    the queue: sense reverse makes clearing the valid bit unnecessary.
 *
 * All three Section 2.2 optimizations (lazy pointers, message valid
 * bits, sense reverse) can be disabled individually for the ablation
 * benchmarks.
 */

#ifndef CNI_NI_CNIQ_HPP
#define CNI_NI_CNIQ_HPP

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "mem/cache.hpp"
#include "ni/net_iface.hpp"

namespace cni
{

/** Static configuration of one CNIiQ / CNIiQm device. */
struct CniqConfig
{
    std::string model = "CNI16Q"; //!< taxonomy label
    int sendQueueBlocks = 16;     //!< device-homed send CQ capacity
    int recvQueueBlocks = 16;     //!< receive CQ capacity
    bool recvHomeMemory = false;  //!< CNI16Qm: receive CQ homed in memory
    int recvCacheBlocks = 16;     //!< device cache over the receive CQ
    int numContexts = 1;          //!< user processes sharing the device

    // Section 2.2 optimizations (ablation switches; all on by default).
    bool lazySendHead = true;  //!< shadow head pointer on the send side
    bool msgValidBits = true;  //!< poll the valid bit, not a tail pointer
    bool senseReverse = true;  //!< alternate valid encoding per pass

    static CniqConfig cni16q();
    static CniqConfig cni512q();
    static CniqConfig cni16qm();

    /** The builtin preset for a CNIiQ taxonomy label, if there is one. */
    static std::optional<CniqConfig> preset(const std::string &model);
};

class Cniq : public NetIface
{
  public:
    Cniq(EventQueue &eq, NodeId node, CoherenceDomain &coh, Network &net,
         NodeMemory &mem, const std::string &name, CniqConfig cfg);

    CoTask<bool> trySend(Proc &p, NetMsg msg, int ctx) override;
    CoTask<bool> tryRecv(Proc &p, NetMsg &out, int ctx) override;

    bool
    hardwareBuffersOverflow() const override
    {
        return cfg_.recvHomeMemory;
    }

    const std::string &modelName() const override { return cfg_.model; }
    const CniqConfig &config() const { return cfg_; }

    SnoopReply onBusTxn(const BusTxn &txn) override;
    bool netDeliver(const NetMsg &msg) override;

  protected:
    CoTask<bool> engineStep() override;

  private:
    // Layout helpers --------------------------------------------------------
    int sendSlots() const { return cfg_.sendQueueBlocks / kBlocksPerSlot; }
    int recvSlots() const { return cfg_.recvQueueBlocks / kBlocksPerSlot; }
    Addr sendQBase(int ctx) const;
    Addr recvQBase(int ctx) const;
    Addr sendSlotAddr(int ctx, std::uint64_t slotMono) const;
    Addr recvSlotAddr(int ctx, std::uint64_t slotMono) const;
    int ctxOfSendAddr(Addr a) const; // -1 if not in any send queue
    int ctxOfRecvAddr(Addr a) const;

    /** Sense encoding for a pass number (pass = slotMono / slots). */
    std::uint64_t senseOf(std::uint64_t slotMono, int slots) const;

    std::uint64_t headerWord(const NetMsg &m, std::uint64_t sense) const;

    // Engine work ------------------------------------------------------------
    CoTask<bool> recvWork(int ctx);
    CoTask<bool> sendWork(int ctx);
    CoTask<void> writeRecvSlot(int ctx);

    CniqConfig cfg_;

    /** Per-context device-side state. */
    struct Ctx
    {
        // Send side (device view).
        std::uint64_t devSendHead = 0;   //!< slots fully pulled (monotonic)
        std::uint64_t committed = 0;     //!< message-ready signals seen
        int pulledInSlot = 0;            //!< blocks pulled of current slot
        int vpBlocksWritten = 0;         //!< virtual polling: known-written
                                         //!< blocks of slot `committed`
        std::deque<NetMsg> stagedSend;   //!< data plane, slot order

        // Receive side (device view).
        std::uint64_t devRecvTail = 0;       //!< slots written (monotonic)
        std::uint64_t devRecvShadowHead = 0; //!< receiver-updated
        std::deque<NetMsg> recvPending;      //!< accepted, awaiting write
        std::vector<NetMsg> recvRing;        //!< data plane, slot-indexed

        // Driver-side software state (the sender/receiver private blocks;
        // timing is charged through cached accesses to state addresses,
        // values live here).
        std::uint64_t tail = 0;          //!< sender's tail (monotonic)
        std::uint64_t shadowHead = 0;    //!< sender's lazy head copy
        std::uint64_t head = 0;          //!< receiver's head (monotonic)
        std::uint64_t consumedSinceUpdate = 0;
    };

    std::vector<Ctx> ctxs_;
    std::unique_ptr<Cache> sendCache_; //!< device coherence state, send CQs
    std::unique_ptr<Cache> recvCache_; //!< device coherence state, recv CQs
    int rrCtx_ = 0;                    //!< engine round-robin cursor

    // Pre-bound per-operation counters (sim/stats.hpp Counter contract).
    StatSet::Counter cSendShadowRefreshes_;
    StatSet::Counter cSendFull_;
    StatSet::Counter cSends_;
    StatSet::Counter cRecvEmptyPolls_;
    StatSet::Counter cRecvHeadUpdates_;
    StatSet::Counter cRecvs_;
    StatSet::Counter cVirtualPollTriggers_;
    StatSet::Counter cRecvRefused_;
    StatSet::Counter cRecvBlocksClaimed_;
    StatSet::Counter cRecvSlotsWritten_;
    StatSet::Counter cSendBlocksPulled_;
};

} // namespace cni

#endif // CNI_NI_CNIQ_HPP
