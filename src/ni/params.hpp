/**
 * @file
 * Tunable NI device parameters (engine overheads, FIFO depths, layout).
 *
 * Bus-visible timing comes from Table 2 (bus/timing.hpp); the constants
 * here cover device-internal costs the paper does not tabulate. They are
 * deliberately small: the NIs modelled are "much simpler than processors"
 * (Section 1) — comparable to the CM-5 NI or a DMA engine.
 */

#ifndef CNI_NI_PARAMS_HPP
#define CNI_NI_PARAMS_HPP

#include "bus/address_map.hpp"
#include "sim/types.hpp"

namespace cni
{

/** Cycles for the NI to serialize one 256-byte message into the network. */
constexpr Tick kNiInjectCycles = 8;

/** Device engine decision overhead per unit of work. */
constexpr Tick kNiEngineCycles = 2;

/**
 * Messages a device may hold fully assembled while waiting for sliding-
 * window space. Beyond this the device stops draining its send queue —
 * backpressure must reach the processor (send queue fills), not hide in
 * unbounded device buffering.
 */
constexpr std::size_t kInjectBacklogLimit = 2;

/** NI2w hardware FIFO depths, in network messages (CM-5-class device). */
constexpr int kNi2wSendFifoMsgs = 4;
constexpr int kNi2wRecvFifoMsgs = 4;

/** CNI4 device-side message FIFO depths (staging beyond the CDRs). */
constexpr int kCni4SendFifoMsgs = 2;
constexpr int kCni4RecvFifoMsgs = 4;

/** Blocks per message slot: one 256-byte network message. */
constexpr int kBlocksPerSlot =
    static_cast<int>(kNetworkMessageBytes / kBlockBytes);

// --------------------------------------------------------------------
// Device register map (uncached space). Context c uses
// kDevRegBase + c * kCtxRegStride + offset.
// --------------------------------------------------------------------
constexpr Addr kCtxRegStride = 0x1000;

constexpr Addr kRegStatus = 0x00;      //!< NI2w: bit0 send-ok, bit1 recv-rdy
constexpr Addr kRegSendCommit = 0x08;  //!< NI2w/CNI4: finalize staged send
constexpr Addr kRegRecvPop = 0x10;     //!< CNI4: explicit pop (clear CDR)
constexpr Addr kRegSendHead = 0x18;    //!< CNIQ: device's send-queue head
constexpr Addr kRegRecvHead = 0x20;    //!< CNIQ: receiver's consumed head
constexpr Addr kRegMsgReady = 0x28;    //!< CNIQ: message-ready signal
constexpr Addr kRegRecvStatus = 0x30;  //!< CNI4: bit0 ready, bit1 clearing
constexpr Addr kRegSendStatus = 0x38;  //!< CNI4: bit0 busy
constexpr Addr kRegSendData = 0x40;    //!< NI2w: staged outgoing data word
constexpr Addr kRegRecvData = 0x48;    //!< NI2w: head message data word

// --------------------------------------------------------------------
// Cachable layout. Device-homed structures live in device memory space;
// memory-homed queues (CNI16Qm) and driver-private state in main memory.
// --------------------------------------------------------------------

// The regions below are deliberately staggered modulo the 256 KB
// direct-mapped processor cache (0x40000), the way an operating system
// would colour the pages: the send queues, receive queues, driver state,
// and user buffers each claim disjoint cache-line ranges so the NI data
// structures do not thrash each other (the paper's footnote 1: conflicts
// affect performance, not correctness — we avoid the gratuitous ones).

/** CNI4 CDRs (device-homed; proc cache lines 0..7). */
constexpr Addr kCni4SendCdr = kDevMemBase + 0x0000;
constexpr Addr kCni4RecvCdr = kDevMemBase + 0x0100;

/** Device-homed CQ bases, per context (lines 512.. / 1024..). */
constexpr Addr kDevSendQBase = kDevMemBase + 0x0'8000;
constexpr Addr kDevRecvQBase = kDevMemBase + 0x1'0000;
constexpr Addr kCtxQueueStride = 0x1'0000;

/** Memory-homed receive CQ base (CNI16Qm), per context. */
constexpr Addr kMemRecvQBase = kMemBase + 0x0701'0000;

/** Driver-private cached state blocks (lines 2048..). */
constexpr Addr kDriverStateBase = kMemBase + 0x0502'0000;
constexpr Addr kCtxStateStride = 0x100;

static_assert(kDevSendQBase % 0x40000 == 0x0'8000);
static_assert(kDevRecvQBase % 0x40000 == 0x1'0000);
static_assert(kMemRecvQBase % 0x40000 == 0x1'0000);
static_assert(kDriverStateBase % 0x40000 == 0x2'0000);

constexpr Addr
ctxReg(int ctx, Addr offset)
{
    return kDevRegBase + static_cast<Addr>(ctx) * kCtxRegStride + offset;
}

} // namespace cni

#endif // CNI_NI_PARAMS_HPP
