/**
 * @file
 * Abstract network-interface device.
 *
 * Each NI is simultaneously:
 *  - a bus agent (snooped registers, and for CNIs a snooping device cache
 *    plus the home for device-homed address space);
 *  - a network port (accepts/refuses deliveries, injects with the sliding
 *    window);
 *  - a software *driver*: the processor-side protocol for sending and
 *    receiving one network message, written as coroutines against a Proc.
 *    The driver is where the five designs differ (uncached loads/stores
 *    for NI2w, CDR handshakes for CNI4, cachable-queue operations for the
 *    CNIiQ family), so the messaging layer above is NI-agnostic.
 *
 * Data plane: drivers charge every register access and cache operation at
 * full timing fidelity, while message *contents* travel through staging
 * queues inside the device model at commit points. This keeps payload
 * bytes exact without simulating per-word device datapaths.
 */

#ifndef CNI_NI_NET_IFACE_HPP
#define CNI_NI_NET_IFACE_HPP

#include <deque>
#include <memory>
#include <string>

#include "bus/bus.hpp"
#include "coh/domain.hpp"
#include "mem/node_memory.hpp"
#include "net/network.hpp"
#include "ni/params.hpp"
#include "proc/proc.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace cni
{

class NetIface : public BusAgent, public NiPort
{
  public:
    NetIface(EventQueue &eq, NodeId node, CoherenceDomain &coh,
             Network &net, NodeMemory &mem, std::string name);
    ~NetIface() override = default;

    // Software driver API --------------------------------------------------

    /**
     * Attempt to hand one network message to the NI, executing the
     * device's processor-side protocol (status checks, data movement,
     * commit). Returns false when the NI cannot take the message now
     * (queue/FIFO full); the messaging layer then applies its software
     * flow control.
     */
    virtual CoTask<bool> trySend(Proc &p, NetMsg msg, int ctx) = 0;

    /**
     * Poll for one received network message. Returns false when none is
     * available. The polling cost is the NI-specific part: uncached loads
     * for NI2w/CNI4, a (usually hitting) cached load for the CQ designs.
     */
    virtual CoTask<bool> tryRecv(Proc &p, NetMsg &out, int ctx) = 0;

    /**
     * True when the device itself buffers receive overflow (CNI16Qm), so
     * software need not drain incoming messages while blocked on a send.
     */
    virtual bool hardwareBuffersOverflow() const { return false; }

    /** Device model name, e.g. "CNI16Qm" (taxonomy label). */
    virtual const std::string &modelName() const = 0;

    // BusAgent --------------------------------------------------------------
    bool
    isHome(Addr a) const override
    {
        return CoherenceDomain::isNiAddr(a);
    }

    const std::string &agentName() const override { return name_; }

    NodeId node() const { return node_; }
    StatSet &stats() { return stats_; }
    EventQueue &eq() { return eq_; }

    /** The fabric's runtime parameters (window, backoffs, ...). */
    const NetParams &netParams() const { return net_.params(); }

    /**
     * Attach this device to its node's coherence domain and start its
     * engine. Must be called exactly once, after construction completes
     * (the engine virtually dispatches into the derived class).
     */
    void
    attachToBus()
    {
        busId_ = coh_.attachNi(this);
        // The device owns its service coroutines: they loop forever, so
        // the frames are reclaimed by ~NetIface rather than leaking.
        engines_.push_back(engineLoop());
        engines_.push_back(injectLoop());
        for (auto &e : engines_)
            e.start();
    }

  protected:
    /** Wake the device engine. */
    void kick() { kickCh_.notifyAll(); }

    /**
     * One unit of device work (a block pull, a slot write, ...). Return
     * false when idle; the engine then sleeps until the next kick().
     */
    virtual CoTask<bool> engineStep() = 0;

    /** Issue a device-initiated transaction through the domain. */
    ValueCompletion<SnoopResult> devTxn(TxnKind kind, Addr a);

    /**
     * Queue a fully assembled message for injection; a dedicated device
     * coroutine serializes messages into the network as the sliding
     * window allows.
     */
    void queueForInjection(NetMsg msg);

    /** Number of messages waiting for window space. */
    std::size_t injectBacklog() const { return injectQ_.size(); }

    DelayAwaiter busyFor(Tick cycles) { return DelayAwaiter(eq_, cycles); }

    EventQueue &eq_;
    NodeId node_;
    CoherenceDomain &coh_;
    Network &net_;
    NodeMemory &mem_;
    std::string name_;
    StatSet stats_;
    StatSet::Counter cWindowStalls_;
    StatSet::Counter cInjected_;
    int busId_ = -1; //!< our agent id on the NI bus

  private:
    CoTask<void> engineLoop();
    CoTask<void> injectLoop();

    WaitChannel kickCh_;
    WaitChannel injectCh_;
    std::deque<NetMsg> injectQ_;
    std::vector<CoTask<void>> engines_; //!< owned service coroutines
};

} // namespace cni

#endif // CNI_NI_NET_IFACE_HPP
