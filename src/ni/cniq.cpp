#include "ni/cniq.hpp"

#include "ni/registry.hpp"
#include "sim/logging.hpp"

#include <utility>

namespace cni
{

CniqConfig
CniqConfig::cni16q()
{
    CniqConfig c;
    c.model = "CNI16Q";
    c.sendQueueBlocks = 16;
    c.recvQueueBlocks = 16;
    c.recvCacheBlocks = 16;
    c.recvHomeMemory = false;
    return c;
}

CniqConfig
CniqConfig::cni512q()
{
    CniqConfig c;
    c.model = "CNI512Q";
    c.sendQueueBlocks = 512;
    c.recvQueueBlocks = 512;
    c.recvCacheBlocks = 512;
    c.recvHomeMemory = false;
    return c;
}

CniqConfig
CniqConfig::cni16qm()
{
    CniqConfig c;
    c.model = "CNI16Qm";
    c.sendQueueBlocks = 16;
    // "The total size of the memory-based queue is 512 cache/memory
    // blocks" with 16 blocks cached on the device (Section 3).
    c.recvQueueBlocks = 512;
    c.recvCacheBlocks = 16;
    c.recvHomeMemory = true;
    return c;
}

std::optional<CniqConfig>
CniqConfig::preset(const std::string &model)
{
    if (model == "CNI16Q")
        return cni16q();
    if (model == "CNI512Q")
        return cni512q();
    if (model == "CNI16Qm")
        return cni16qm();
    return std::nullopt;
}

Cniq::Cniq(EventQueue &eq, NodeId node, CoherenceDomain &coh, Network &net,
           NodeMemory &mem, const std::string &name, CniqConfig cfg)
    : NetIface(eq, node, coh, net, mem, name), cfg_(std::move(cfg)),
      cSendShadowRefreshes_(stats_, "send_shadow_refreshes"),
      cSendFull_(stats_, "send_full"), cSends_(stats_, "sends"),
      cRecvEmptyPolls_(stats_, "recv_empty_polls"),
      cRecvHeadUpdates_(stats_, "recv_head_updates"),
      cRecvs_(stats_, "recvs"),
      cVirtualPollTriggers_(stats_, "virtual_poll_triggers"),
      cRecvRefused_(stats_, "recv_refused"),
      cRecvBlocksClaimed_(stats_, "recv_blocks_claimed"),
      cRecvSlotsWritten_(stats_, "recv_slots_written"),
      cSendBlocksPulled_(stats_, "send_blocks_pulled")
{
    cni_assert(cfg_.sendQueueBlocks % kBlocksPerSlot == 0);
    cni_assert(cfg_.recvQueueBlocks % kBlocksPerSlot == 0);
    cni_assert(!cfg_.recvHomeMemory ||
               coh.placement() == NiPlacement::MemoryBus);

    ctxs_.resize(cfg_.numContexts);
    for (auto &c : ctxs_)
        c.recvRing.resize(recvSlots());

    TxnIssue port = [this](const BusTxn &txn,
                           std::function<void(SnoopResult)> done) {
        BusTxn t = txn;
        t.requesterId = busId_;
        coh_.deviceIssue(t, std::move(done));
    };

    sendCache_ = std::make_unique<Cache>(
        eq, name + ".sendcache",
        std::size_t(cfg_.sendQueueBlocks) * cfg_.numContexts,
        Initiator::Device);
    sendCache_->setIssuePort(port);
    recvCache_ = std::make_unique<Cache>(
        eq, name + ".recvcache",
        std::size_t(cfg_.recvCacheBlocks) * cfg_.numContexts,
        Initiator::Device);
    recvCache_->setIssuePort(port);
    // Memory-homed queues stage transient data: pass dirty ownership to
    // the consuming processor on supply so only *unread* overflow blocks
    // are ever written back (see Cache::setTransferOwnership).
    if (cfg_.recvHomeMemory)
        recvCache_->setTransferOwnership(true);

    // The device owns its home storage at reset.
    for (int ctx = 0; ctx < cfg_.numContexts; ++ctx) {
        for (int b = 0; b < cfg_.sendQueueBlocks; ++b) {
            sendCache_->primeLine(sendQBase(ctx) + Addr(b) * kBlockBytes,
                                  Moesi::Modified);
        }
        if (!cfg_.recvHomeMemory) {
            for (int b = 0; b < cfg_.recvQueueBlocks; ++b) {
                recvCache_->primeLine(
                    recvQBase(ctx) + Addr(b) * kBlockBytes,
                    Moesi::Modified);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------

Addr
Cniq::sendQBase(int ctx) const
{
    return kDevSendQBase + Addr(ctx) * kCtxQueueStride;
}

Addr
Cniq::recvQBase(int ctx) const
{
    return (cfg_.recvHomeMemory ? kMemRecvQBase : kDevRecvQBase) +
           Addr(ctx) * kCtxQueueStride;
}

Addr
Cniq::sendSlotAddr(int ctx, std::uint64_t slotMono) const
{
    return sendQBase(ctx) +
           (slotMono % sendSlots()) * kNetworkMessageBytes;
}

Addr
Cniq::recvSlotAddr(int ctx, std::uint64_t slotMono) const
{
    return recvQBase(ctx) +
           (slotMono % recvSlots()) * kNetworkMessageBytes;
}

int
Cniq::ctxOfSendAddr(Addr a) const
{
    for (int ctx = 0; ctx < cfg_.numContexts; ++ctx) {
        const Addr base = sendQBase(ctx);
        if (a >= base && a < base + Addr(cfg_.sendQueueBlocks) * kBlockBytes)
            return ctx;
    }
    return -1;
}

int
Cniq::ctxOfRecvAddr(Addr a) const
{
    for (int ctx = 0; ctx < cfg_.numContexts; ++ctx) {
        const Addr base = recvQBase(ctx);
        if (a >= base && a < base + Addr(cfg_.recvQueueBlocks) * kBlockBytes)
            return ctx;
    }
    return -1;
}

std::uint64_t
Cniq::senseOf(std::uint64_t slotMono, int slots) const
{
    if (!cfg_.senseReverse)
        return 1; // valid always encoded as 1
    const std::uint64_t pass = slotMono / slots;
    return (pass % 2 == 0) ? 1 : 0;
}

std::uint64_t
Cniq::headerWord(const NetMsg &m, std::uint64_t sense) const
{
    // [0] sense/valid bit, [8:1] fragIndex, [16:9] fragCount,
    // [32:17] payload bytes, [63:33] handler.
    return (sense & 1) | (std::uint64_t(m.fragIndex & 0xff) << 1) |
           (std::uint64_t(m.fragCount & 0xff) << 9) |
           (std::uint64_t(m.payloadBytes() & 0xffff) << 17) |
           (std::uint64_t(m.handler) << 33);
}

// ---------------------------------------------------------------------
// Driver: send
// ---------------------------------------------------------------------

CoTask<bool>
Cniq::trySend(Proc &p, NetMsg msg, int ctx)
{
    cni_assert(ctx >= 0 && ctx < cfg_.numContexts);
    Ctx &c = ctxs_[ctx];
    const Addr stateAddr = kDriverStateBase + Addr(ctx) * kCtxStateStride;

    // Check for space against the (lazy) shadow head.
    co_await p.read64(stateAddr); // tail + shadow head + sense: one block
    auto slotsUsed = [&] { return c.tail - c.shadowHead; };
    if (!cfg_.lazySendHead ||
        slotsUsed() >= std::uint64_t(sendSlots())) {
        // Refresh the shadow from the device's head register.
        cSendShadowRefreshes_.incr();
        c.shadowHead = co_await p.uncachedLoad(ctxReg(ctx, kRegSendHead));
        co_await p.write64(stateAddr, c.shadowHead);
        if (slotsUsed() >= std::uint64_t(sendSlots())) {
            cSendFull_.incr();
            co_return false;
        }
    }

    // Write the message into the slot in ascending order (header word
    // first). Unlike the receive queue, send-queue validity is signalled
    // by the message-ready register, not the sense word, so ascending
    // order is safe — and it lets virtual polling pull block k-1 exactly
    // once, when the write of block k invalidates it.
    const Addr slot = sendSlotAddr(ctx, c.tail);
    co_await p.write64(slot,
                       headerWord(msg, senseOf(c.tail, sendSlots())));
    if (msg.wireBytes() > 8)
        co_await p.touch(slot + 8, msg.wireBytes() - 8, true);

    // Advance the private tail and signal the device.
    c.tail += 1;
    co_await p.write64(stateAddr, c.tail);
    c.stagedSend.push_back(std::move(msg));
    co_await p.uncachedStore(ctxReg(ctx, kRegMsgReady), 1);
    cSends_.incr();
    co_return true;
}

// ---------------------------------------------------------------------
// Driver: receive
// ---------------------------------------------------------------------

CoTask<bool>
Cniq::tryRecv(Proc &p, NetMsg &out, int ctx)
{
    cni_assert(ctx >= 0 && ctx < cfg_.numContexts);
    Ctx &c = ctxs_[ctx];
    const Addr stateAddr =
        kDriverStateBase + Addr(ctx) * kCtxStateStride + kBlockBytes;

    co_await p.read64(stateAddr); // head + sense: private, cached

    if (!cfg_.msgValidBits) {
        // Ablation: poll the device's tail register instead (one uncached
        // load per poll attempt).
        const std::uint64_t tail =
            co_await p.uncachedLoad(ctxReg(ctx, kRegRecvStatus));
        if (tail == c.head) {
            cRecvEmptyPolls_.incr();
            co_return false;
        }
    }

    const Addr slot = recvSlotAddr(ctx, c.head);
    // Poll the message valid bit in the head slot's header word. While
    // the queue is empty this hits in the processor cache; the device's
    // claim invalidation makes the next poll miss and fetch new data.
    const std::uint64_t hdr = co_await p.read64(slot);
    const std::uint64_t want = senseOf(c.head, recvSlots());
    if (cfg_.msgValidBits && (hdr & 1) != want) {
        cRecvEmptyPolls_.incr();
        co_return false;
    }

    // Valid message: read the payload blocks.
    const std::size_t payloadBytes = (hdr >> 17) & 0xffff;
    if (payloadBytes + kNetworkHeaderBytes > 8) {
        co_await p.touch(slot + 8, payloadBytes + kNetworkHeaderBytes - 8,
                         false);
    }
    out = c.recvRing[c.head % recvSlots()];

    if (!cfg_.senseReverse) {
        // Ablation: clear the valid word, transferring ownership of the
        // block to the receiver (the extra transaction sense reverse
        // avoids).
        co_await p.write64(slot, hdr & ~std::uint64_t(1));
    }

    // Advance the private head; lazily propagate it to the device.
    c.head += 1;
    c.consumedSinceUpdate += 1;
    co_await p.write64(stateAddr, c.head);
    const std::uint64_t period =
        std::max<std::uint64_t>(1, std::uint64_t(recvSlots()) / 2);
    if (c.consumedSinceUpdate >= period) {
        c.consumedSinceUpdate = 0;
        cRecvHeadUpdates_.incr();
        co_await p.uncachedStore(ctxReg(ctx, kRegRecvHead), c.head);
    }
    cRecvs_.incr();
    co_return true;
}

// ---------------------------------------------------------------------
// Bus-visible behaviour
// ---------------------------------------------------------------------

SnoopReply
Cniq::onBusTxn(const BusTxn &txn)
{
    // Memory-homed receive queues: the device cache snoops main-memory
    // addresses like any other cache.
    if (isMainMemory(txn.addr)) {
        if (cfg_.recvHomeMemory && ctxOfRecvAddr(txn.addr) >= 0)
            return recvCache_->onBusTxn(txn);
        return {};
    }
    if (!CoherenceDomain::isNiAddr(txn.addr))
        return {};

    if (isDeviceRegister(txn.addr)) {
        SnoopReply r;
        r.isHome = true;
        const int ctx =
            static_cast<int>((txn.addr - kDevRegBase) / kCtxRegStride);
        if (ctx < 0 || ctx >= cfg_.numContexts)
            return r;
        Ctx &c = ctxs_[ctx];
        const Addr off = txn.addr & (kCtxRegStride - 1);
        if (txn.kind == TxnKind::UncachedRead) {
            if (off == kRegSendHead)
                r.data = c.devSendHead;
            else if (off == kRegRecvStatus)
                r.data = c.devRecvTail;
        } else if (txn.kind == TxnKind::UncachedWrite) {
            if (off == kRegMsgReady) {
                c.committed += 1;
                c.vpBlocksWritten = 0;
                kick();
            } else if (off == kRegRecvHead) {
                c.devRecvShadowHead = txn.data;
                kick(); // space may have freed
            }
        }
        return r;
    }

    // Device-homed queue space.
    if (int ctx = ctxOfSendAddr(txn.addr); ctx >= 0) {
        SnoopReply r = sendCache_->onBusTxn(txn);
        r.isHome = true;
        // Virtual polling: a processor write-permission request for block
        // k of the in-progress slot proves blocks < k are complete.
        if ((txn.kind == TxnKind::Upgrade ||
             txn.kind == TxnKind::ReadExclusive) &&
            txn.initiator == Initiator::Processor) {
            Ctx &c = ctxs_[ctx];
            const Addr slotBase = sendSlotAddr(ctx, c.committed);
            if (txn.addr >= slotBase &&
                txn.addr < slotBase + kNetworkMessageBytes) {
                const int blk =
                    static_cast<int>((txn.addr - slotBase) / kBlockBytes);
                if (blk > c.vpBlocksWritten) {
                    c.vpBlocksWritten = blk;
                    cVirtualPollTriggers_.incr();
                    kick();
                }
            }
        }
        return r;
    }
    if (ctxOfRecvAddr(txn.addr) >= 0 && !cfg_.recvHomeMemory) {
        SnoopReply r = recvCache_->onBusTxn(txn);
        r.isHome = true;
        return r;
    }

    SnoopReply r;
    r.isHome = true; // unused NI space
    return r;
}

bool
Cniq::netDeliver(const NetMsg &msg)
{
    cni_assert(static_cast<int>(msg.ctx) < cfg_.numContexts);
    Ctx &c = ctxs_[msg.ctx];
    // Accept while ring slots remain (device view of the receiver head);
    // CNI16Qm's larger memory-homed ring is what lets it keep absorbing
    // bursts that back up the network for the others.
    const std::uint64_t inQueue =
        c.devRecvTail - c.devRecvShadowHead + c.recvPending.size();
    if (inQueue >= std::uint64_t(recvSlots())) {
        cRecvRefused_.incr();
        return false;
    }
    c.recvPending.push_back(msg);
    kick();
    return true;
}

// ---------------------------------------------------------------------
// Device engine
// ---------------------------------------------------------------------

CoTask<bool>
Cniq::engineStep()
{
    // Round-robin over contexts; receive work before send work.
    for (int i = 0; i < cfg_.numContexts; ++i) {
        const int ctx = (rrCtx_ + i) % cfg_.numContexts;
        if (co_await recvWork(ctx)) {
            rrCtx_ = (ctx + 1) % cfg_.numContexts;
            co_return true;
        }
    }
    for (int i = 0; i < cfg_.numContexts; ++i) {
        const int ctx = (rrCtx_ + i) % cfg_.numContexts;
        if (co_await sendWork(ctx)) {
            rrCtx_ = (ctx + 1) % cfg_.numContexts;
            co_return true;
        }
    }
    co_return false;
}

CoTask<bool>
Cniq::recvWork(int ctx)
{
    Ctx &c = ctxs_[ctx];
    if (c.recvPending.empty())
        co_return false;
    if (c.devRecvTail - c.devRecvShadowHead >= std::uint64_t(recvSlots()))
        co_return false; // no slot space (receiver lagging)
    co_await writeRecvSlot(ctx);
    co_return true;
}

CoTask<void>
Cniq::writeRecvSlot(int ctx)
{
    Ctx &c = ctxs_[ctx];
    NetMsg msg = std::move(c.recvPending.front());
    c.recvPending.pop_front();

    const Addr slot = recvSlotAddr(ctx, c.devRecvTail);
    const int blocks = static_cast<int>(blocksFor(msg.wireBytes()));

    // Claim payload blocks first, the header block last, so the valid bit
    // becomes visible only after the payload is in place.
    for (int b = blocks - 1; b >= 0; --b) {
        const Addr a = slot + Addr(b) * kBlockBytes;
        co_await busyFor(kNiEngineCycles);
        co_await recvCache_->claimBlock(a, /*deferWriteback=*/true);
        cRecvBlocksClaimed_.incr();
    }

    // Architectural data: header word (sense last in program order) and
    // payload bytes.
    if (!msg.payload.empty()) {
        mem_.write(slot + kNetworkHeaderBytes,
                   std::as_const(msg.payload).data(),
                   msg.payload.size());
    }
    mem_.write64(slot,
                 headerWord(msg, senseOf(c.devRecvTail, recvSlots())));

    c.recvRing[c.devRecvTail % recvSlots()] = std::move(msg);
    c.devRecvTail += 1;
    cRecvSlotsWritten_.incr();
}

CoTask<bool>
Cniq::sendWork(int ctx)
{
    Ctx &c = ctxs_[ctx];

    // Window backpressure: with assembled messages already waiting for
    // injection, stop draining the send queue so it fills and the
    // processor sees the flow-control condition.
    if (injectBacklog() >= kInjectBacklogLimit)
        co_return false;

    const bool slotCommitted = c.devSendHead < c.committed;
    int pullableBlocks = 0;
    std::size_t wire = kNetworkMessageBytes;
    if (slotCommitted) {
        cni_assert(!c.stagedSend.empty());
        wire = c.stagedSend.front().wireBytes();
        pullableBlocks = static_cast<int>(blocksFor(wire));
    } else {
        // Virtual polling: pull completed blocks of the slot still being
        // written.
        pullableBlocks = c.vpBlocksWritten;
    }
    if (c.pulledInSlot >= pullableBlocks)
        co_return false;

    const Addr slot = sendSlotAddr(ctx, c.devSendHead);
    const Addr a = slot + Addr(c.pulledInSlot) * kBlockBytes;
    co_await busyFor(kNiEngineCycles);
    // Coherent read: pulls the block out of the processor cache (unless
    // it was already flushed back to the device's home storage).
    co_await sendCache_->fetchBlock(a, false);
    c.pulledInSlot += 1;
    cSendBlocksPulled_.incr();

    if (slotCommitted &&
        c.pulledInSlot >= static_cast<int>(blocksFor(wire))) {
        NetMsg msg = std::move(c.stagedSend.front());
        c.stagedSend.pop_front();
        queueForInjection(std::move(msg));
        c.devSendHead += 1;
        c.pulledInSlot = 0;
    }
    co_return true;
}

void
detail::registerCniqModels(NiRegistry &r)
{
    for (const char *name : {"CNI16Q", "CNI512Q", "CNI16Qm"}) {
        const CniqConfig preset = *CniqConfig::preset(name);
        NiTraits t;
        t.coherent = true;
        t.queueBased = true;
        t.memoryHomedRecv = preset.recvHomeMemory;
        r.register_(name, t, [preset](const NiBuildContext &c) {
            CniqConfig qc = c.cniqOverride ? *c.cniqOverride : preset;
            qc.numContexts = c.numContexts;
            return std::make_unique<Cniq>(c.eq, c.node, c.coh, c.net,
                                          c.mem, c.name, qc);
        });
    }
}

} // namespace cni
