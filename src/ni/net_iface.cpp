#include "ni/net_iface.hpp"

namespace cni
{

namespace
{

/// Minimal fire-and-forget coroutine wrapper used by detach().
struct DetachedTask
{
    struct promise_type
    {
        DetachedTask get_return_object() { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() {}
        void
        unhandled_exception()
        {
            cni_panic("unhandled exception escaped a detached task");
        }
    };
};

DetachedTask
runDetached(CoTask<void> task)
{
    co_await std::move(task);
}

} // namespace

void
detach(CoTask<void> task)
{
    runDetached(std::move(task));
}

NetIface::NetIface(EventQueue &eq, NodeId node, NodeFabric &fabric,
                   Network &net, NodeMemory &mem, std::string name)
    : eq_(eq), node_(node), fabric_(fabric), net_(net), mem_(mem),
      name_(std::move(name)), stats_(name_), kickCh_(eq), injectCh_(eq)
{
    net_.attach(node, this);
}

ValueCompletion<SnoopResult>
NetIface::devTxn(TxnKind kind, Addr a)
{
    BusTxn txn;
    txn.kind = kind;
    txn.addr = a;
    txn.initiator = Initiator::Device;
    // The device's requester id on its own bus is set by the subclass at
    // attach time via the fabric; the fabric rewrites ids when crossing.
    txn.requesterId = busId_;
    return ValueCompletion<SnoopResult>(
        [this, txn](std::function<void(SnoopResult)> done) {
            fabric_.deviceIssue(txn, std::move(done));
        });
}

void
NetIface::queueForInjection(NetMsg msg)
{
    injectQ_.push_back(std::move(msg));
    injectCh_.notifyAll();
}

CoTask<void>
NetIface::engineLoop()
{
    for (;;) {
        bool did = co_await engineStep();
        if (!did)
            co_await kickCh_.wait();
    }
}

CoTask<void>
NetIface::injectLoop()
{
    for (;;) {
        if (injectQ_.empty()) {
            co_await injectCh_.wait();
            continue;
        }
        const NodeId dst = injectQ_.front().dst;
        if (!net_.canInject(node_, dst)) {
            stats_.incr("window_stalls");
            co_await net_.windowChannel(node_).wait();
            continue;
        }
        NetMsg msg = std::move(injectQ_.front());
        injectQ_.pop_front();
        co_await busyFor(kNiInjectCycles);
        stats_.incr("injected");
        net_.inject(std::move(msg));
        // Backlog space freed: the engine may resume draining its send
        // queue (see kInjectBacklogLimit).
        kick();
    }
}

} // namespace cni
