#include "ni/net_iface.hpp"

#include <exception>

#include "sim/logging.hpp"

namespace cni
{

NetIface::NetIface(EventQueue &eq, NodeId node, CoherenceDomain &coh,
                   Network &net, NodeMemory &mem, std::string name)
    : eq_(eq), node_(node), coh_(coh), net_(net), mem_(mem),
      name_(std::move(name)), stats_(name_),
      cWindowStalls_(stats_, "window_stalls"), cInjected_(stats_, "injected"),
      kickCh_(eq), injectCh_(eq)
{
    net_.attach(node, this);
}

ValueCompletion<SnoopResult>
NetIface::devTxn(TxnKind kind, Addr a)
{
    BusTxn txn;
    txn.kind = kind;
    txn.addr = a;
    txn.initiator = Initiator::Device;
    // The device's requester id is assigned at attach time by the
    // domain; a bridging backend rewrites ids when crossing buses.
    txn.requesterId = busId_;
    return ValueCompletion<SnoopResult>(
        [this, txn](std::function<void(SnoopResult)> done) {
            coh_.deviceIssue(txn, std::move(done));
        });
}

void
NetIface::queueForInjection(NetMsg msg)
{
    injectQ_.push_back(std::move(msg));
    injectCh_.notifyAll();
}

// Both service loops catch everything: nobody co_awaits an owned
// engine frame, so an exception stored in its promise would otherwise
// vanish and the simulation would die later with a misleading
// "workload deadlocked" instead of the real crash site.

CoTask<void>
NetIface::engineLoop()
{
    try {
        for (;;) {
            bool did = co_await engineStep();
            if (!did)
                co_await kickCh_.wait();
        }
    } catch (const std::exception &e) {
        cni_panic("%s: engine coroutine threw: %s", name_.c_str(),
                  e.what());
    } catch (...) {
        cni_panic("%s: engine coroutine threw", name_.c_str());
    }
}

CoTask<void>
NetIface::injectLoop()
{
    try {
        for (;;) {
            if (injectQ_.empty()) {
                co_await injectCh_.wait();
                continue;
            }
            const NodeId dst = injectQ_.front().dst;
            if (!net_.canInject(node_, dst)) {
                cWindowStalls_.incr();
                co_await net_.windowChannel(node_).wait();
                continue;
            }
            NetMsg msg = std::move(injectQ_.front());
            injectQ_.pop_front();
            co_await busyFor(kNiInjectCycles);
            cInjected_.incr();
            net_.inject(std::move(msg));
            // Backlog space freed: the engine may resume draining its
            // send queue (see kInjectBacklogLimit).
            kick();
        }
    } catch (const std::exception &e) {
        cni_panic("%s: inject coroutine threw: %s", name_.c_str(),
                  e.what());
    } catch (...) {
        cni_panic("%s: inject coroutine threw", name_.c_str());
    }
}

} // namespace cni
