/**
 * @file
 * CNI4: four cachable device registers expose one 256-byte network
 * message (Table 1, Section 3).
 *
 * Message data moves in whole cache blocks over the coherence protocol;
 * status and control stay in uncached registers. Receive-side CDR reuse
 * needs the explicit three-cycle handshake of Section 2.1:
 *   1. the processor pops with an uncached store to RECV_POP,
 *   2. a memory barrier pushes the store out of the store buffer,
 *   3. the status register does not report "ready" again until the
 *      device has invalidated the processor's cached copy of the CDR —
 *      so the next status poll closes the handshake.
 *
 * The device implements the virtual-polling variant of Section 3 on the
 * send side: snooping the invalidation (upgrade) for CDR block k+1 lets
 * it pull block k before the commit signal arrives.
 */

#ifndef CNI_NI_CNI4_HPP
#define CNI_NI_CNI4_HPP

#include <deque>

#include "mem/cache.hpp"
#include "ni/net_iface.hpp"

namespace cni
{

class Cni4 : public NetIface
{
  public:
    Cni4(EventQueue &eq, NodeId node, CoherenceDomain &coh, Network &net,
         NodeMemory &mem, const std::string &name);

    CoTask<bool> trySend(Proc &p, NetMsg msg, int ctx) override;
    CoTask<bool> tryRecv(Proc &p, NetMsg &out, int ctx) override;

    const std::string &modelName() const override { return model_; }

    SnoopReply onBusTxn(const BusTxn &txn) override;
    bool netDeliver(const NetMsg &msg) override;

    /** Introspection for tests: receive-path device state. */
    struct DebugState
    {
        bool sendBusy;
        bool recvReady;
        bool recvClearing;
        std::size_t recvFifo;
        std::size_t stagedSend;
    };

    DebugState
    debugState() const
    {
        return {sendBusy_, recvReady_, recvClearing_, recvFifo_.size(),
                stagedSend_.size()};
    }

  protected:
    CoTask<bool> engineStep() override;

  private:
    CoTask<void> pullSendCdr();
    CoTask<void> clearRecvCdr();
    void presentNextRecv();

    std::string model_ = "CNI4";

    /** Device-side coherence state for the CDR blocks. */
    Cache devCache_;

    // Send side ----------------------------------------------------------
    bool sendBusy_ = false;      //!< CDR holds an uncollected message
    bool sendCommitted_ = false; //!< commit signal arrived
    int sendBlocksWritten_ = 0;  //!< virtual polling: blocks known written
    int sendBlocksPulled_ = 0;
    int sendBlocksTotal_ = 0;
    std::deque<NetMsg> stagedSend_; //!< driver-to-device data plane

    // Receive side ---------------------------------------------------------
    bool recvReady_ = false;    //!< a message is presented in the CDR
    bool recvClearing_ = false; //!< pop handshake in progress
    NetMsg recvCur_;            //!< message currently in the CDR
    std::deque<NetMsg> recvFifo_;

    // Pre-bound per-operation counters (sim/stats.hpp Counter contract).
    StatSet::Counter cSendFull_;
    StatSet::Counter cSends_;
    StatSet::Counter cRecvEmptyPolls_;
    StatSet::Counter cRecvs_;
    StatSet::Counter cRecvRefused_;
    StatSet::Counter cSendBlocksPulled_;
    StatSet::Counter cRecvClears_;
    StatSet::Counter cRecvPresented_;
};

} // namespace cni

#endif // CNI_NI_CNI4_HPP
