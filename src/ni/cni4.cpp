#include "ni/cni4.hpp"

#include "ni/registry.hpp"
#include "sim/logging.hpp"

#include <utility>

namespace cni
{

namespace
{
constexpr int kCdrBlocks = kBlocksPerSlot; // 4 blocks = 1 network message

int
blocksForWire(std::size_t wireBytes)
{
    return static_cast<int>(blocksFor(wireBytes));
}
} // namespace

Cni4::Cni4(EventQueue &eq, NodeId node, CoherenceDomain &coh, Network &net,
           NodeMemory &mem, const std::string &name)
    : NetIface(eq, node, coh, net, mem, name),
      devCache_(eq, name + ".devcache", 2 * kCdrBlocks, Initiator::Device),
      cSendFull_(stats_, "send_full"), cSends_(stats_, "sends"),
      cRecvEmptyPolls_(stats_, "recv_empty_polls"),
      cRecvs_(stats_, "recvs"), cRecvRefused_(stats_, "recv_refused"),
      cSendBlocksPulled_(stats_, "send_blocks_pulled"),
      cRecvClears_(stats_, "recv_clears"),
      cRecvPresented_(stats_, "recv_presented")
{
    devCache_.setIssuePort([this](const BusTxn &txn,
                                  std::function<void(SnoopResult)> done) {
        BusTxn t = txn;
        t.requesterId = busId_;
        coh_.deviceIssue(t, std::move(done));
    });
    // The device owns its CDR storage at reset.
    for (int b = 0; b < kCdrBlocks; ++b) {
        devCache_.primeLine(kCni4SendCdr + Addr(b) * kBlockBytes,
                            Moesi::Modified);
        devCache_.primeLine(kCni4RecvCdr + Addr(b) * kBlockBytes,
                            Moesi::Modified);
    }
}

// ---------------------------------------------------------------------
// Driver (processor-side protocol)
// ---------------------------------------------------------------------

CoTask<bool>
Cni4::trySend(Proc &p, NetMsg msg, int)
{
    const std::uint64_t st =
        co_await p.uncachedLoad(ctxReg(0, kRegSendStatus));
    if (st & 1) {
        cSendFull_.incr();
        co_return false; // CDR busy: previous message not yet collected
    }
    // Write the message into the send CDR with ordinary cached stores;
    // each block write's upgrade/read-exclusive is snooped by the device
    // (virtual polling).
    const std::size_t wire = msg.wireBytes();
    co_await p.touch(kCni4SendCdr, wire, true);
    stagedSend_.push_back(std::move(msg));
    // The commit retires through the store buffer; no barrier is needed
    // because the device orders it behind the block writes it snooped,
    // and the next status read drains the buffer anyway.
    co_await p.uncachedStore(ctxReg(0, kRegSendCommit), 1);
    cSends_.incr();
    co_return true;
}

CoTask<bool>
Cni4::tryRecv(Proc &p, NetMsg &out, int)
{
    const std::uint64_t st =
        co_await p.uncachedLoad(ctxReg(0, kRegRecvStatus));
    if (!(st & 1)) {
        cRecvEmptyPolls_.incr();
        co_return false;
    }
    cni_assert(recvReady_ && !recvClearing_);
    // Read the message out of the CDR with cached loads (block misses are
    // supplied cache-to-cache by the device).
    const std::size_t wire = recvCur_.wireBytes();
    co_await p.touch(kCni4RecvCdr, wire, false);
    out = recvCur_;
    // Explicit pop + store-buffer flush: steps one and two of the
    // three-cycle reuse handshake. Step three is the next status poll,
    // which reports ready only after the device re-invalidated the CDR.
    // The CDR stays "presented" (device state) until the pop reaches the
    // device; uncached loads drain the store buffer, so the next status
    // poll cannot bypass this pop.
    co_await p.uncachedStore(ctxReg(0, kRegRecvPop), 1);
    co_await p.membar();
    cRecvs_.incr();
    co_return true;
}

// ---------------------------------------------------------------------
// Bus-visible behaviour
// ---------------------------------------------------------------------

SnoopReply
Cni4::onBusTxn(const BusTxn &txn)
{
    if (!CoherenceDomain::isNiAddr(txn.addr))
        return {};

    if (isDeviceRegister(txn.addr)) {
        SnoopReply r;
        r.isHome = true;
        const Addr off = txn.addr & (kCtxRegStride - 1);
        if (txn.kind == TxnKind::UncachedRead) {
            if (off == kRegSendStatus)
                r.data = sendBusy_ ? 1 : 0;
            else if (off == kRegRecvStatus)
                r.data = (recvReady_ && !recvClearing_) ? 1 : 0;
        } else if (txn.kind == TxnKind::UncachedWrite) {
            if (off == kRegSendCommit) {
                cni_assert(!stagedSend_.empty());
                sendBusy_ = true;
                sendCommitted_ = true;
                sendBlocksTotal_ =
                    blocksForWire(stagedSend_.front().wireBytes());
                sendBlocksWritten_ = sendBlocksTotal_;
                kick();
            } else if (off == kRegRecvPop) {
                cni_assert(recvReady_ && !recvClearing_);
                recvReady_ = false;
                recvClearing_ = true;
                kick();
            }
        }
        return r;
    }

    // Device-homed CDR space: delegate coherence to the device cache and
    // watch processor write-permission requests for virtual polling.
    SnoopReply r = devCache_.onBusTxn(txn);
    r.isHome = true;
    if ((txn.kind == TxnKind::Upgrade || txn.kind == TxnKind::ReadExclusive)
        && txn.initiator == Initiator::Processor &&
        txn.addr >= kCni4SendCdr &&
        txn.addr < kCni4SendCdr + Addr(kCdrBlocks) * kBlockBytes) {
        const int blk =
            static_cast<int>((txn.addr - kCni4SendCdr) / kBlockBytes);
        // An invalidation for block k means blocks < k are fully written
        // (CDRs fill in FIFO order); allow the engine to pull them early.
        if (!sendCommitted_ && blk > sendBlocksWritten_) {
            sendBlocksWritten_ = blk;
            kick();
        }
    }
    return r;
}

bool
Cni4::netDeliver(const NetMsg &msg)
{
    if (static_cast<int>(recvFifo_.size()) >= kCni4RecvFifoMsgs) {
        cRecvRefused_.incr();
        return false;
    }
    recvFifo_.push_back(msg);
    kick();
    return true;
}

// ---------------------------------------------------------------------
// Device engine
// ---------------------------------------------------------------------

CoTask<bool>
Cni4::engineStep()
{
    // Receive side first: present or clear the receive CDR.
    if (recvClearing_) {
        co_await clearRecvCdr();
        co_return true;
    }
    if (!recvReady_ && !recvClearing_ && !recvFifo_.empty()) {
        presentNextRecv();
        co_return true;
    }
    // Send side: pull written CDR blocks (virtual polling or commit) —
    // but stop collecting when assembled messages are already waiting
    // for window space, so the CDR stays busy and the sender stalls.
    if (sendBlocksPulled_ < sendBlocksWritten_ &&
        injectBacklog() < kInjectBacklogLimit) {
        co_await pullSendCdr();
        co_return true;
    }
    co_return false;
}

CoTask<void>
Cni4::pullSendCdr()
{
    const Addr a =
        kCni4SendCdr + Addr(sendBlocksPulled_) * kBlockBytes;
    co_await busyFor(kNiEngineCycles);
    // Coherent read: the processor cache supplies (M -> O).
    co_await devCache_.fetchBlock(a, false);
    ++sendBlocksPulled_;
    cSendBlocksPulled_.incr();
    if (sendCommitted_ && sendBlocksPulled_ >= sendBlocksTotal_) {
        // Whole message collected: assemble and queue for injection.
        cni_assert(!stagedSend_.empty());
        NetMsg msg = std::move(stagedSend_.front());
        stagedSend_.pop_front();
        queueForInjection(std::move(msg));
        sendBlocksPulled_ = 0;
        sendBlocksWritten_ = 0;
        sendBlocksTotal_ = 0;
        sendCommitted_ = false;
        sendBusy_ = false;
    }
}

CoTask<void>
Cni4::clearRecvCdr()
{
    // Invalidate the processor's cached copies of the receive CDR so the
    // next message cannot produce false hits.
    const int blocks = blocksForWire(recvCur_.wireBytes());
    for (int b = 0; b < blocks; ++b) {
        const Addr a = kCni4RecvCdr + Addr(b) * kBlockBytes;
        co_await busyFor(kNiEngineCycles);
        co_await devCache_.fetchBlock(a, true);
    }
    recvClearing_ = false;
    cRecvClears_.incr();
    if (!recvFifo_.empty())
        presentNextRecv();
}

void
Cni4::presentNextRecv()
{
    // The device owns the CDR blocks after the clear; writing the next
    // message into its own storage needs no bus transactions.
    recvCur_ = std::move(recvFifo_.front());
    recvFifo_.pop_front();
    // Architectural data: expose header + payload at the CDR addresses.
    mem_.write64(kCni4RecvCdr, (std::uint64_t(recvCur_.handler) << 32) |
                                   recvCur_.payloadBytes());
    if (!recvCur_.payload.empty()) {
        mem_.write(kCni4RecvCdr + kNetworkHeaderBytes,
                   std::as_const(recvCur_.payload).data(),
                   recvCur_.payload.size());
    }
    recvReady_ = true;
    cRecvPresented_.incr();
}

void
detail::registerCni4Model(NiRegistry &r)
{
    NiTraits t;
    t.coherent = true;
    t.queueBased = false;
    t.memoryHomedRecv = false;
    r.register_("CNI4", t, [](const NiBuildContext &c) {
        return std::make_unique<Cni4>(c.eq, c.node, c.coh, c.net, c.mem,
                                      c.name);
    });
}

} // namespace cni
