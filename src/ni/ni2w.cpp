#include "ni/ni2w.hpp"

#include "ni/registry.hpp"
#include "sim/logging.hpp"

namespace cni
{

Ni2w::Ni2w(EventQueue &eq, NodeId node, CoherenceDomain &coh, Network &net,
           NodeMemory &mem, const std::string &name)
    : NetIface(eq, node, coh, net, mem, name),
      cSendFull_(stats_, "send_full"), cSends_(stats_, "sends"),
      cRecvEmptyPolls_(stats_, "recv_empty_polls"),
      cRecvs_(stats_, "recvs"), cRecvRefused_(stats_, "recv_refused")
{
}

std::uint64_t
Ni2w::statusWord() const
{
    std::uint64_t st = 0;
    if (static_cast<int>(sendFifo_.size()) < kNi2wSendFifoMsgs)
        st |= 1; // send ok
    if (!recvFifo_.empty())
        st |= 2; // recv ready
    return st;
}

CoTask<bool>
Ni2w::trySend(Proc &p, NetMsg msg, int)
{
    // Check for space in the hardware send queue.
    const std::uint64_t st = co_await p.uncachedLoad(ctxReg(0, kRegStatus));
    if (!(st & 1)) {
        cSendFull_.incr();
        co_return false;
    }
    // Write the message, one uncached 8-byte store per word (header word
    // included: 12-byte header rounds to two words with the first payload
    // bytes packed in).
    const std::size_t words = (msg.wireBytes() + 7) / 8;
    for (std::size_t w = 0; w < words; ++w)
        co_await p.uncachedStore(ctxReg(0, kRegSendData), w);
    // Commit: the store's arrival at the device moves the staged message
    // into the hardware FIFO (FIFO order matches the store buffer's).
    staged_.push_back(std::move(msg));
    co_await p.uncachedStore(ctxReg(0, kRegSendCommit), 1);
    cSends_.incr();
    co_return true;
}

CoTask<bool>
Ni2w::tryRecv(Proc &p, NetMsg &out, int)
{
    const std::uint64_t st = co_await p.uncachedLoad(ctxReg(0, kRegStatus));
    if (!(st & 2)) {
        cRecvEmptyPolls_.incr();
        co_return false;
    }
    cni_assert(!recvFifo_.empty());
    const std::size_t words = (recvFifo_.front().wireBytes() + 7) / 8;
    // One uncached 8-byte load per word; the last read implicitly pops
    // the hardware receive queue (CM-5 clear-on-read).
    for (std::size_t w = 0; w < words; ++w)
        co_await p.uncachedLoad(ctxReg(0, kRegRecvData));
    out = std::move(recvFifo_.front());
    recvFifo_.pop_front();
    cRecvs_.incr();
    co_return true;
}

SnoopReply
Ni2w::onBusTxn(const BusTxn &txn)
{
    SnoopReply r;
    if (!CoherenceDomain::isNiAddr(txn.addr))
        return r;
    r.isHome = true;
    switch (txn.kind) {
      case TxnKind::UncachedRead:
        if ((txn.addr & (kCtxRegStride - 1)) == kRegStatus)
            r.data = statusWord();
        return r;
      case TxnKind::UncachedWrite:
        if ((txn.addr & (kCtxRegStride - 1)) == kRegSendCommit) {
            cni_assert(!staged_.empty());
            cni_assert(static_cast<int>(sendFifo_.size()) <
                       kNi2wSendFifoMsgs);
            sendFifo_.push_back(std::move(staged_.front()));
            staged_.pop_front();
            kick();
        }
        return r;
      default:
        // NI2w exposes no cachable space; coherent transactions to NI
        // space should not occur.
        return r;
    }
}

bool
Ni2w::netDeliver(const NetMsg &msg)
{
    if (static_cast<int>(recvFifo_.size()) >= kNi2wRecvFifoMsgs) {
        cRecvRefused_.incr();
        return false;
    }
    recvFifo_.push_back(msg);
    return true;
}

CoTask<bool>
Ni2w::engineStep()
{
    if (sendFifo_.empty() || injectBacklog() >= kInjectBacklogLimit)
        co_return false;
    co_await busyFor(kNiEngineCycles);
    queueForInjection(std::move(sendFifo_.front()));
    sendFifo_.pop_front();
    co_return true;
}

void
detail::registerNi2wModel(NiRegistry &r)
{
    NiTraits t;
    t.coherent = false;
    t.queueBased = false;
    t.memoryHomedRecv = false;
    r.register_("NI2w", t, [](const NiBuildContext &c) {
        return std::make_unique<Ni2w>(c.eq, c.node, c.coh, c.net, c.mem,
                                      c.name);
    });
}

} // namespace cni
