#include "ni/registry.hpp"

#include "sim/logging.hpp"

namespace cni
{

NiRegistry &
NiRegistry::instance()
{
    static NiRegistry reg;
    static const bool builtinsRegistered = [] {
        detail::registerNi2wModel(reg);
        detail::registerCni4Model(reg);
        detail::registerCniqModels(reg);
        return true;
    }();
    (void)builtinsRegistered;
    return reg;
}

void
NiRegistry::register_(const std::string &name, NiTraits traits, Factory fn)
{
    cni_assert(fn != nullptr);
    entries_[name] = Entry{traits, std::move(fn)};
}

bool
NiRegistry::known(const std::string &name) const
{
    return entries_.count(name) != 0;
}

const NiTraits *
NiRegistry::traits(const std::string &name) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : &it->second.traits;
}

std::unique_ptr<NetIface>
NiRegistry::make(const std::string &name, const NiBuildContext &ctx) const
{
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        cni_fatal("unknown NI model '%s' (registered models: %s)",
                  name.c_str(), namesCsv().c_str());
    }
    return it->second.factory(ctx);
}

std::vector<std::string>
NiRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

std::string
NiRegistry::namesCsv() const
{
    std::string csv;
    for (const auto &[name, entry] : entries_) {
        if (!csv.empty())
            csv += ", ";
        csv += name;
    }
    return csv;
}

NiRegistrar::NiRegistrar(const char *name, NiTraits traits,
                         NiRegistry::Factory fn)
{
    NiRegistry::instance().register_(name, traits, std::move(fn));
}

} // namespace cni
