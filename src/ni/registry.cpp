#include "ni/registry.hpp"

namespace cni
{

NiRegistry &
NiRegistry::instance()
{
    static NiRegistry reg;
    static const bool builtinsRegistered = [] {
        // First lookup may come from inside a Machine build; the
        // static-init guard serializes this block (sim/audit.hpp).
        audit::BootstrapScope bootstrap;
        detail::registerNi2wModel(reg);
        detail::registerCni4Model(reg);
        detail::registerCniqModels(reg);
        return true;
    }();
    (void)builtinsRegistered;
    return reg;
}

} // namespace cni
