#include "ni/registry.hpp"

namespace cni
{

NiRegistry &
NiRegistry::instance()
{
    static NiRegistry reg;
    static const bool builtinsRegistered = [] {
        detail::registerNi2wModel(reg);
        detail::registerCni4Model(reg);
        detail::registerCniqModels(reg);
        return true;
    }();
    (void)builtinsRegistered;
    return reg;
}

} // namespace cni
