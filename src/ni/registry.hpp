/**
 * @file
 * Name-keyed factory registry for network-interface devices.
 *
 * Every NI design registers itself under its taxonomy label ("NI2w",
 * "CNI16Qm", ...) together with a NiTraits record describing the
 * properties the machine builder needs for up-front validation. The
 * machine constructor selects devices purely by name, so new designs —
 * including out-of-tree ones — plug in without touching core code:
 *
 *   namespace { const NiRegistrar reg("MyNI", NiTraits{...},
 *       [](const NiBuildContext &c) { return std::make_unique<MyNi>(...); });
 *   }
 *
 * The five paper designs self-register from their own translation units
 * in src/ni/ (pulled in lazily by NiRegistry::instance(), which keeps
 * static-library builds from dropping the registration objects).
 */

#ifndef CNI_NI_REGISTRY_HPP
#define CNI_NI_REGISTRY_HPP

#include <string>

#include "ni/net_iface.hpp"
#include "sim/registry.hpp"

namespace cni
{

struct CniqConfig;

/**
 * Capabilities and constraints of one NI design, consulted by the
 * machine builder when validating a description (Section 5 of the
 * paper defines which combinations are implementable).
 */
struct NiTraits
{
    bool coherent = true; //!< caches processor memory (not placeable on
                          //!< a cache bus, which cannot snoop for it)
    bool queueBased = false;      //!< CNIiQ family: per-context queues,
                                  //!< supports multiprogramming
    bool memoryHomedRecv = false; //!< receive queue homed in main memory
                                  //!< (CNI16Qm): snarfing target, cannot
                                  //!< live across a coherent I/O bus
};

/** Everything a factory needs to construct one NI device instance. */
struct NiBuildContext
{
    EventQueue &eq;
    NodeId node;
    CoherenceDomain &coh;
    Network &net;
    NodeMemory &mem;
    std::string name;  //!< instance name, e.g. "node3.CNI16Qm"
    int numContexts;   //!< user processes sharing the device
    const CniqConfig *cniqOverride; //!< ablation override, or nullptr
};

class NiRegistry
    : public Registry<NetIface, NiTraits, const NiBuildContext &>
{
  public:
    NiRegistry() : Registry("NI model", "registered models") {}

    /** The process-wide registry (builtin models are ensured here). */
    static NiRegistry &instance();
};

/** Registers a model at static-initialization time (out-of-tree NIs). */
using NiRegistrar = Registrar<NiRegistry>;

namespace detail
{
// Self-registration hooks of the builtin models, defined next to each
// device in src/ni/*.cpp. Called once from NiRegistry::instance() so a
// static-library link never drops them. They take the registry by
// reference so registration cannot re-enter instance() mid-init.
void registerNi2wModel(NiRegistry &r);
void registerCni4Model(NiRegistry &r);
void registerCniqModels(NiRegistry &r);
} // namespace detail

} // namespace cni

#endif // CNI_NI_REGISTRY_HPP
