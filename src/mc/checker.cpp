#include "mc/checker.hpp"

#include <algorithm>
#include <deque>
#include <ostream>
#include <set>

#include "bus/address_map.hpp"
#include "coh/directory.hpp"
#include "mc/encode.hpp"
#include "sim/logging.hpp"

namespace cni
{

namespace
{

const char *
actName(int a)
{
    switch (McChecker::Act(a)) {
      case McChecker::kRead:
        return "read";
      case McChecker::kWrite:
        return "write";
      case McChecker::kDrop:
        return "drop";
      case McChecker::kWriteback:
        return "writeback";
      case McChecker::kTouch:
        return "touch";
    }
    return "?";
}

const char *
slotName(int s)
{
    return s == 0 ? "cache" : "ni";
}

} // namespace

/**
 * Probe-side mirror of mem/cache.cpp's Cache::onBusTxn, with an explicit
 * value per line. The MOESI decisions are copied line for line (M/O
 * supply and demote to O on a ReadShared, E demotes to S, ReadExclusive
 * and Upgrade invalidate) so the backends see exactly the replies a real
 * cache would give — plus reply.data, which the real cache does not
 * model and the data-value invariant needs.
 */
struct McChecker::CacheMirror final : BusAgent
{
    McChecker *rig = nullptr;
    NodeId node = 0;
    int slot = 0;
    std::string name;

    SnoopReply
    onBusTxn(const BusTxn &txn) override
    {
        SnoopReply reply;
        const int j = rig->blockByLocal(blockAlign(txn.addr));
        if (j < 0)
            return reply;
        cni_assert(rig->blocks_[std::size_t(j)].req == node);
        Line &ln = rig->agentAt(node, slot).lines[std::size_t(j)];
        switch (txn.kind) {
          case TxnKind::UncachedRead:
          case TxnKind::UncachedWrite:
            return reply;
          case TxnKind::ReadShared:
            if (ln.st == St::I)
                return reply;
            reply.hadCopy = true;
            if (ln.st == St::M || ln.st == St::O) {
                reply.supplied = true;
                reply.data = ln.val;
                ln.st = St::O;
            } else if (ln.st == St::E) {
                ln.st = St::S;
            }
            return reply;
          case TxnKind::ReadExclusive:
            if (ln.st == St::I)
                return reply;
            reply.hadCopy = true;
            if (ln.st == St::M || ln.st == St::O) {
                reply.supplied = true;
                reply.data = ln.val;
            }
            ln.st = St::I;
            return reply;
          case TxnKind::Upgrade:
            if (ln.st == St::I)
                return reply;
            reply.hadCopy = true;
            ln.st = St::I;
            return reply;
          case TxnKind::Update: {
            // Mirror of the real cache's update-install path. The
            // threshold is armed only on the processor-cache slot,
            // exactly like Machine (device caches never flip).
            if (ln.st == St::I)
                return reply; // silently evicted; home drops us
            const int thr = slot == kCacheSlot ? rig->mirrThr_ : 0;
            if (thr > 0 && int(ln.unread) >= thr) {
                ln.st = St::I;
                ln.unread = 0;
                reply.invalidatedOnUpdate = true;
                return reply;
            }
            reply.hadCopy = true;
            if (ln.st == St::M || ln.st == St::O) {
                reply.supplied = true;
                reply.data = ln.val; // pre-update copy, freshest there is
            }
            ln.st = St::S;
            ln.val = txn.data; // absorb the pushed word
            if (ln.unread < 255)
                ++ln.unread;
            return reply;
          }
          case TxnKind::Writeback:
            return reply;
        }
        return reply;
    }

    const std::string &agentName() const override { return name; }
};

/**
 * The home/main-memory mirror: replies its current value for every
 * request (including Upgrades — a converted upgrade's grant may have to
 * carry the memory copy) and absorbs writeback data.
 */
struct McChecker::MemMirror final : BusAgent
{
    McChecker *rig = nullptr;
    NodeId node = 0;
    std::string name;

    SnoopReply
    onBusTxn(const BusTxn &txn) override
    {
        SnoopReply reply;
        const int j = rig->blockByLocal(blockAlign(txn.addr));
        if (j < 0)
            return reply;
        cni_assert(rig->blocks_[std::size_t(j)].home == node);
        reply.isHome = true;
        if (txn.kind == TxnKind::Writeback)
            rig->memVal_[std::size_t(j)] = txn.data;
        else
            reply.data = rig->memVal_[std::size_t(j)];
        return reply;
    }

    bool isHome(Addr a) const override { return isMainMemory(a); }
    const std::string &agentName() const override { return name; }
};

std::size_t
McChecker::DriveChooser::choose(const std::vector<ChoiceOption> &options)
{
    if (want >= 0) {
        for (std::size_t i = 0; i < options.size(); ++i) {
            if (options[i].channel == want) {
                want = -1;
                return i;
            }
        }
        cni_assert(!"planned channel has no pending message");
    }
    // Drain mode: the canonical continuation — the untagged event the
    // plain heap kernel would run next.
    std::size_t best = options.size();
    for (std::size_t i = 0; i < options.size(); ++i) {
        if (options[i].channel >= 0)
            continue;
        if (best == options.size() ||
            options[i].when < options[best].when ||
            (options[i].when == options[best].when &&
             options[i].seq < options[best].seq)) {
            best = i;
        }
    }
    cni_assert(best < options.size());
    return best;
}

McChecker::McChecker(const McConfig &cfg)
    : cfg_(cfg),
      maxPark_(cfg.maxPark != 0 ? cfg.maxPark
                                : 2 * std::size_t(cfg.nodes))
{
    cni_assert(cfg_.nodes >= 1 && cfg_.nodes <= 8);
    cni_assert(cfg_.blocks >= 1 && cfg_.blocks <= 16);

    armedSeedBug_ = DirectoryFabric::testSkipFwdDoneHold;
    DirectoryFabric::testSkipFwdDoneHold = cfg_.seedBug;

    netParams_.topology = "mesh";
    netParams_.meshX = cfg_.nodes;
    netParams_.meshY = 1;
    net_ = NetRegistry::instance().make("mesh", eq_, cfg_.nodes,
                                        netParams_);

    const CoherenceTraits *traits =
        CoherenceRegistry::instance().traits(cfg_.backend);
    cni_assert(traits != nullptr);
    updateProtocol_ = traits->updateProtocol;
    mirrThr_ = traits->adaptiveUpdate ? cfg_.dir.updThreshold : 0;

    for (NodeId n = 0; n < cfg_.nodes; ++n) {
        CohBuildContext ctx{eq_,
                            n,
                            cfg_.nodes,
                            NiPlacement::MemoryBus,
                            *net_,
                            "mc" + std::to_string(n),
                            cfg_.dir};
        dom_.push_back(CoherenceRegistry::instance().make(cfg_.backend,
                                                          ctx));
    }

    agents_.resize(std::size_t(cfg_.nodes) * kSlots);
    for (AgentModel &ag : agents_)
        ag.lines.resize(std::size_t(cfg_.blocks));
    requesterIds_.resize(std::size_t(cfg_.nodes) * kSlots, -1);
    for (NodeId n = 0; n < cfg_.nodes; ++n) {
        for (int slot = 0; slot < kSlots; ++slot) {
            auto m = std::make_unique<CacheMirror>();
            m->rig = this;
            m->node = n;
            m->slot = slot;
            m->name = "mc" + std::to_string(n) + "." + slotName(slot);
            const int id = slot == kCacheSlot
                               ? dom_[std::size_t(n)]->attachCache(m.get())
                               : dom_[std::size_t(n)]->attachNi(m.get());
            requesterIds_[std::size_t(n) * kSlots + std::size_t(slot)] =
                id;
            mirrors_.push_back(std::move(m));
        }
        auto mm = std::make_unique<MemMirror>();
        mm->rig = this;
        mm->node = n;
        mm->name = "mc" + std::to_string(n) + ".mem";
        dom_[std::size_t(n)]->attachHome(mm.get());
        mems_.push_back(std::move(mm));
    }

    buildBlocks();
    buildSymmetries();

    memVal_.assign(std::size_t(cfg_.blocks), 0);
    current_.assign(std::size_t(cfg_.blocks), 0);

    eq_.setChooser(&chooser_);
    root_ = snap();
}

McChecker::~McChecker()
{
    eq_.setChooser(nullptr);
    DirectoryFabric::testSkipFwdDoneHold = armedSeedBug_;
}

void
McChecker::buildBlocks()
{
    auto *dir0 = dynamic_cast<DirectoryFabric *>(dom_[0].get());
    std::set<int> usedIdx;
    for (int j = 0; j < cfg_.blocks; ++j) {
        BlockCfg b;
        b.req = NodeId(j % cfg_.nodes);
        b.ord = j / cfg_.nodes;
        // Pick the smallest unused local index whose home is remote —
        // indexes are globally unique so every block's node-local
        // (probe-space) address is distinct and the memory mirrors can
        // key on it unambiguously.
        for (int idx = 1;; ++idx) {
            if (usedIdx.count(idx) != 0)
                continue;
            b.local = kMemBase + Addr(idx) * kBlockBytes;
            if (dir0 != nullptr) {
                auto *d = dynamic_cast<DirectoryFabric *>(
                    dom_[std::size_t(b.req)].get());
                b.home = d->homeNodeOf(b.local);
                if (b.home == b.req && cfg_.nodes > 1)
                    continue; // want the remote-miss protocol paths
                b.globalKey = d->globalize(b.local);
            } else {
                b.home = b.req; // snoop: everything is node-local
                b.globalKey = b.local;
            }
            usedIdx.insert(idx);
            break;
        }
        byLocal_[b.local] = j;
        blocks_.push_back(b);
    }
}

void
McChecker::buildSymmetries()
{
    // A node relabeling pi is usable only if it maps the block plan onto
    // itself: every block must have a partner with the permuted
    // requester, the same per-node ordinal, and the permuted home. A
    // multi-set sparse directory would additionally need matching set
    // geometry, which the plan does not control — restrict to the
    // identity there (sound, just less reduction).
    const bool multiSet =
        cfg_.dir.entries > 0 && cfg_.dir.entries / cfg_.dir.assoc > 1;
    std::vector<int> perm(std::size_t(cfg_.nodes));
    for (int n = 0; n < cfg_.nodes; ++n)
        perm[std::size_t(n)] = n;
    do {
        bool identity = true;
        for (int n = 0; n < cfg_.nodes; ++n)
            identity = identity && perm[std::size_t(n)] == n;
        if (multiSet && !identity)
            continue;
        bool ok = true;
        for (const BlockCfg &b : blocks_) {
            bool found = false;
            for (const BlockCfg &c : blocks_) {
                if (c.req == NodeId(perm[std::size_t(b.req)]) &&
                    c.ord == b.ord) {
                    found = c.home == NodeId(perm[std::size_t(b.home)]);
                    break;
                }
            }
            ok = ok && found;
        }
        if (!ok)
            continue;
        std::vector<int> inv(std::size_t(cfg_.nodes));
        for (int n = 0; n < cfg_.nodes; ++n)
            inv[std::size_t(perm[std::size_t(n)])] = n;
        std::map<Addr, std::uint32_t> codes;
        for (const BlockCfg &b : blocks_) {
            codes[b.globalKey] =
                std::uint32_t(perm[std::size_t(b.req)]) *
                    std::uint32_t(cfg_.blocks) +
                std::uint32_t(b.ord);
        }
        perms_.push_back(perm);
        permInv_.push_back(std::move(inv));
        permCodes_.push_back(std::move(codes));
    } while (std::next_permutation(perm.begin(), perm.end()));
    cni_assert(!perms_.empty());
}

int
McChecker::blockByLocal(Addr a) const
{
    auto it = byLocal_.find(a);
    return it == byLocal_.end() ? -1 : it->second;
}

void
McChecker::fail(const std::string &what)
{
    violations_.push_back(what);
}

bool
McChecker::valCurrentOrPending(int block, std::uint64_t v) const
{
    if (v == current_[std::size_t(block)])
        return true;
    if (!updateProtocol_)
        return false;
    for (const AgentModel &ag : agents_) {
        if (ag.outstanding && ag.actBlock == block &&
            Act(ag.actKind) == kWrite && ag.wrVal == v)
            return true;
    }
    return false;
}

void
McChecker::drainUntagged()
{
    while (eq_.hasUntagged())
        eq_.step();
}

std::vector<McStep>
McChecker::enumerate() const
{
    std::vector<McStep> steps;
    for (const ChoiceOption &head : eq_.taggedHeads()) {
        McStep s;
        s.deliver = true;
        s.channel = head.channel;
        if (head.meta != nullptr)
            s.label = head.meta->label;
        steps.push_back(std::move(s));
    }
    for (NodeId n = 0; n < cfg_.nodes; ++n) {
        for (int slot = 0; slot < kSlots; ++slot) {
            const AgentModel &ag =
                agents_[std::size_t(n) * kSlots + std::size_t(slot)];
            if (ag.outstanding)
                continue;
            for (int j = 0; j < cfg_.blocks; ++j) {
                if (blocks_[std::size_t(j)].req != n)
                    continue;
                const St st = ag.lines[std::size_t(j)].st;
                auto add = [&](Act a) {
                    McStep s;
                    s.node = n;
                    s.slot = slot;
                    s.block = j;
                    s.act = a;
                    steps.push_back(std::move(s));
                };
                add(kWrite); // legal from every state
                if (st == St::I)
                    add(kRead);
                if (st == St::S || st == St::E)
                    add(kDrop);
                if (st == St::O || st == St::M)
                    add(kWriteback);
                if (mirrThr_ > 0 && slot == kCacheSlot &&
                    st == St::S &&
                    ag.lines[std::size_t(j)].unread > 0)
                    add(kTouch);
            }
        }
    }
    return steps;
}

bool
McChecker::canApply(const McStep &s) const
{
    if (s.deliver) {
        for (const ChoiceOption &head : eq_.taggedHeads()) {
            if (head.channel == s.channel)
                return true;
        }
        return false;
    }
    const AgentModel &ag =
        agents_[std::size_t(s.node) * kSlots + std::size_t(s.slot)];
    if (ag.outstanding)
        return false;
    const St st = ag.lines[std::size_t(s.block)].st;
    switch (Act(s.act)) {
      case kRead:
        return st == St::I;
      case kWrite:
        return true;
      case kDrop:
        return st == St::S || st == St::E;
      case kWriteback:
        return st == St::O || st == St::M;
      case kTouch:
        return mirrThr_ > 0 && s.slot == kCacheSlot && st == St::S &&
               ag.lines[std::size_t(s.block)].unread > 0;
    }
    return false;
}

void
McChecker::apply(const McStep &s)
{
    if (s.deliver) {
        chooser_.want = s.channel;
        const bool ran = eq_.step();
        cni_assert(ran);
    } else {
        applyAction(s);
    }
    drainUntagged();
    checkInvariants();
}

void
McChecker::applyAction(const McStep &s)
{
    AgentModel &ag = agentAt(NodeId(s.node), s.slot);
    cni_assert(!ag.outstanding);
    Line &ln = ag.lines[std::size_t(s.block)];
    const Addr addr = blocks_[std::size_t(s.block)].local;

    TxnKind kind;
    std::uint64_t wrVal = 0;
    switch (Act(s.act)) {
      case kRead:
        cni_assert(ln.st == St::I);
        kind = TxnKind::ReadShared;
        break;
      case kWrite:
        wrVal = freshToken();
        if (ln.st == St::E || ln.st == St::M) {
            // Writable copy: the store hits silently (E -> M upgrade
            // without a transaction, exactly like the real cache).
            ln.st = St::M;
            ln.val = wrVal;
            current_[std::size_t(s.block)] = wrVal;
            return;
        }
        kind = ln.st == St::I ? TxnKind::ReadExclusive : TxnKind::Upgrade;
        break;
      case kDrop:
        cni_assert(ln.st == St::S || ln.st == St::E);
        ln.st = St::I;
        return;
      case kWriteback:
        cni_assert(ln.st == St::O || ln.st == St::M);
        kind = TxnKind::Writeback;
        break;
      case kTouch:
        // Load hit on an updated Shared line: no transaction, just the
        // counter reset the real cache performs in load().
        cni_assert(ln.st == St::S && ln.unread > 0);
        ln.unread = 0;
        return;
      default:
        cni_assert(!"bad action");
        return;
    }

    BusTxn t;
    t.kind = kind;
    t.addr = addr;
    t.initiator =
        s.slot == kNiSlot ? Initiator::Device : Initiator::Processor;
    t.requesterId =
        requesterIds_[std::size_t(s.node) * kSlots + std::size_t(s.slot)];
    if (kind == TxnKind::Writeback) {
        // Mirror of Cache::claimBlock/refill: invalidate the frame at
        // issue time; the value rides the transaction.
        t.data = ln.val;
        ln.st = St::I;
    }
    if (updateProtocol_ && Act(s.act) == kWrite) {
        // The written word rides the request so the home's Update probes
        // can push it to the sharers. Gated: plain-directory Pending
        // encodings (and thus fingerprints) must stay byte-identical.
        t.data = wrVal;
    }

    ag.outstanding = true;
    ag.actBlock = s.block;
    ag.actKind = s.act;
    ag.actTxn = kind;
    ag.wrVal = wrVal;

    const NodeId n = NodeId(s.node);
    const int slot = s.slot;
    const int block = s.block;
    const int act = s.act;
    auto done = [this, n, slot, block, act,
                 wrVal](const SnoopResult &r) {
        onComplete(n, slot, block, act, wrVal, r);
    };
    if (slot == kNiSlot)
        dom_[std::size_t(n)]->deviceIssue(t, std::move(done));
    else
        dom_[std::size_t(n)]->procIssue(t, std::move(done));
}

void
McChecker::onComplete(NodeId n, int slot, int block, int kind,
                      std::uint64_t wrVal, const SnoopResult &r)
{
    AgentModel &ag = agentAt(n, slot);
    if (!ag.outstanding || ag.actBlock != block) {
        fail(std::string(slotName(slot)) + std::to_string(n) +
             ": completion with no matching outstanding transaction "
             "(duplicate or stray grant)");
        return;
    }
    const TxnKind txn = ag.actTxn;
    ag.outstanding = false;
    ag.actBlock = -1;
    Line &ln = ag.lines[std::size_t(block)];
    const std::string who =
        std::string(slotName(slot)) + std::to_string(n) + " block " +
        std::to_string(block);

    switch (Act(kind)) {
      case kRead:
        if (!valCurrentOrPending(block, r.data)) {
            fail(who + ": read filled a stale value (data-value "
                       "invariant)");
        }
        // Cache::refill's fill-state selection, verbatim.
        if (r.cacheSupplied && r.ownershipTransferred)
            ln.st = St::O;
        else if (r.cacheSupplied || r.sharedCopy)
            ln.st = St::S;
        else
            ln.st = St::E;
        ln.val = r.data;
        ln.unread = 0;
        return;
      case kWrite:
        if (txn == TxnKind::ReadExclusive) {
            if (!valCurrentOrPending(block, r.data))
                fail(who + ": read-to-own filled a stale value");
        } else if (ln.st != St::I) {
            // Permission-only upgrade: the retained copy must still be
            // the latest committed value (or, on an update backend, a
            // pushed word from a write still in flight).
            if (!valCurrentOrPending(block, ln.val))
                fail(who + ": upgrade granted over a stale copy");
        } else if (r.upgradeFilled) {
            if (!valCurrentOrPending(block, r.data))
                fail(who + ": converted upgrade filled a stale value");
        } else {
            fail(who + ": upgrade completed on an invalidated line "
                       "without a data fill");
            return;
        }
        // An update backend's grant says whether sharers absorbed the
        // pushed word and stayed: install Sm (Owned) then, Modified
        // otherwise — mirror of Cache::store.
        ln.st = r.sharersRemain ? St::O : St::M;
        ln.val = wrVal;
        ln.unread = 0;
        current_[std::size_t(block)] = wrVal;
        return;
      case kWriteback:
        return; // frame was invalidated at issue
      default:
        fail(who + ": unexpected completion kind");
        return;
    }
}

void
McChecker::checkInvariants()
{
    // SWMR + data value over the mirror copies.
    for (int j = 0; j < cfg_.blocks; ++j) {
        int dirtyOrExclusive = 0; // M, E, O holders
        int exclusive = 0;        // M, E holders
        int valid = 0;
        for (std::size_t a = 0; a < agents_.size(); ++a) {
            const Line &ln = agents_[a].lines[std::size_t(j)];
            if (ln.st == St::I)
                continue;
            ++valid;
            if (ln.st != St::S)
                ++dirtyOrExclusive;
            if (ln.st == St::M || ln.st == St::E)
                ++exclusive;
            if (!valCurrentOrPending(j, ln.val)) {
                fail("block " + std::to_string(j) +
                     ": a valid copy holds a stale value (SWMR/value)");
            }
        }
        if (dirtyOrExclusive > 1 || (exclusive > 0 && valid > 1)) {
            fail("block " + std::to_string(j) +
                 ": multiple writable/exclusive copies (SWMR)");
        }
    }

    // Bounded park/recall depth.
    for (const auto &d : dom_) {
        const std::size_t depth = d->mcParkDepth();
        maxParkSeen_ = std::max(maxParkSeen_, depth);
        if (depth > maxPark_) {
            fail("park/waiting depth " + std::to_string(depth) +
                 " exceeds bound " + std::to_string(maxPark_));
        }
    }

    // No stuck state: with no event of any kind left, everything must
    // be fully quiescent.
    if (eq_.empty()) {
        for (std::size_t a = 0; a < agents_.size(); ++a) {
            if (agents_[a].outstanding) {
                fail(std::string(slotName(int(a) % kSlots)) +
                     std::to_string(a / kSlots) +
                     ": transaction outstanding but no event can ever "
                     "complete it (stuck state)");
            }
        }
        for (const auto &d : dom_) {
            std::string why;
            if (!d->mcQuiescent(&why))
                fail("domain not quiescent at event exhaustion: " + why);
        }
    }
}

McChecker::RigSnap
McChecker::snap() const
{
    RigSnap s;
    s.eq = eq_.snapshot();
    for (const auto &d : dom_)
        s.dom.push_back(d->mcSnapshot());
    s.agents = agents_;
    s.mem = memVal_;
    s.current = current_;
    s.nextToken = nextToken_;
    return s;
}

void
McChecker::restore(const RigSnap &s)
{
    eq_.restore(s.eq);
    for (std::size_t n = 0; n < dom_.size(); ++n)
        dom_[n]->mcRestore(s.dom[n]);
    agents_ = s.agents;
    memVal_ = s.mem;
    current_ = s.current;
    nextToken_ = s.nextToken;
}

void
McChecker::encodeState(McEncoder &enc, const std::vector<int> &perm,
                       const std::vector<int> &inv) const
{
    // Mirror-agent state, nodes visited in permuted-label order so the
    // walk is covariant with the relabeling.
    enc.tag('A');
    for (int out = 0; out < cfg_.nodes; ++out) {
        const NodeId raw = NodeId(inv[std::size_t(out)]);
        for (int slot = 0; slot < kSlots; ++slot) {
            const AgentModel &ag =
                agents_[std::size_t(raw) * kSlots + std::size_t(slot)];
            for (int ord = 0;; ++ord) {
                int j = -1;
                for (int k = 0; k < cfg_.blocks; ++k) {
                    if (blocks_[std::size_t(k)].req == raw &&
                        blocks_[std::size_t(k)].ord == ord) {
                        j = k;
                    }
                }
                if (j < 0)
                    break;
                const Line &ln = ag.lines[std::size_t(j)];
                enc.u8(std::uint8_t(ln.st));
                enc.token(ln.st == St::I ? 0 : ln.val);
                // Counter emitted only when it can influence behaviour
                // (legacy fingerprints stay byte-identical), normalized
                // to 0 on Invalid lines — every install resets it, so a
                // stale value there is unobservable.
                if (mirrThr_ > 0)
                    enc.u8(ln.st == St::I ? 0 : ln.unread);
            }
            if (ag.outstanding) {
                enc.u8(std::uint8_t(ag.actKind) + 1);
                enc.u32(std::uint32_t(
                    blocks_[std::size_t(ag.actBlock)].ord));
                enc.u8(std::uint8_t(ag.actTxn));
                enc.token(ag.wrVal);
            } else {
                enc.u8(0);
            }
        }
    }

    // Memory + last-committed values, blocks in permuted-code order.
    enc.tag('V');
    std::vector<int> order(blocks_.size());
    for (std::size_t j = 0; j < blocks_.size(); ++j)
        order[j] = int(j);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return enc.blockCode(blocks_[std::size_t(a)].globalKey) <
               enc.blockCode(blocks_[std::size_t(b)].globalKey);
    });
    for (int j : order) {
        enc.block(blocks_[std::size_t(j)].globalKey);
        enc.token(memVal_[std::size_t(j)]);
        enc.token(current_[std::size_t(j)]);
    }

    // Backend protocol state (directories, in-flight home txns, parks).
    enc.tag('D');
    for (int out = 0; out < cfg_.nodes; ++out)
        dom_[std::size_t(inv[std::size_t(out)])]->mcEncode(enc);

    // In-flight messages: per-channel FIFOs under the relabeled channel
    // ids, each blob canonically re-encoded by its destination domain.
    enc.tag('W');
    struct Wire
    {
        std::int32_t permCh;
        std::size_t order;
        std::int32_t rawCh;
        const ChoiceMeta *meta;
    };
    std::vector<Wire> wires;
    eq_.forEachTagged([&](std::int32_t ch, const ChoiceMeta &meta) {
        const int src = int(ch) / cfg_.nodes;
        const int dst = int(ch) % cfg_.nodes;
        const std::int32_t permCh =
            std::int32_t(perm[std::size_t(src)]) * cfg_.nodes +
            perm[std::size_t(dst)];
        wires.push_back(Wire{permCh, wires.size(), ch, &meta});
    });
    std::sort(wires.begin(), wires.end(),
              [](const Wire &a, const Wire &b) {
                  if (a.permCh != b.permCh)
                      return a.permCh < b.permCh;
                  return a.order < b.order; // per-channel FIFO order
              });
    for (const Wire &w : wires) {
        enc.u32(std::uint32_t(w.permCh));
        dom_[std::size_t(w.rawCh % cfg_.nodes)]->mcEncodeWire(
            enc, w.meta->blob.data(), w.meta->blob.size());
    }
}

std::uint64_t
McChecker::fingerprint() const
{
    std::vector<std::uint8_t> best;
    for (std::size_t p = 0; p < perms_.size(); ++p) {
        McEncoder enc(perms_[p], permCodes_[p]);
        encodeState(enc, perms_[p], permInv_[p]);
        if (best.empty() || enc.bytes() < best)
            best = enc.bytes();
    }
    McEncoder h({}, {});
    for (std::uint8_t b : best)
        h.u8(b);
    return h.hash();
}

bool
McChecker::explore(bool breadthFirst, McResult &res)
{
    std::set<std::uint64_t> visited;

    restore(root_);
    violations_.clear();
    drainUntagged();
    checkInvariants();
    if (!violations_.empty()) {
        res.violations = violations_;
        return true;
    }
    visited.insert(fingerprint());

    auto fullyQuiescent = [this]() {
        if (!eq_.empty())
            return false;
        for (const AgentModel &ag : agents_) {
            if (ag.outstanding)
                return false;
        }
        return true;
    };

    if (breadthFirst) {
        struct BfsNode
        {
            RigSnap s;
            std::vector<McStep> path;
        };
        std::deque<BfsNode> frontier;
        frontier.push_back(BfsNode{snap(), {}});
        while (!frontier.empty()) {
            BfsNode node = std::move(frontier.front());
            frontier.pop_front();
            restore(node.s);
            const std::vector<McStep> steps = enumerate();
            for (const McStep &step : steps) {
                restore(node.s);
                violations_.clear();
                apply(step);
                ++res.transitions;
                if (!violations_.empty()) {
                    res.violations = violations_;
                    res.trace = node.path;
                    res.trace.push_back(step);
                    res.visited = visited.size();
                    return true;
                }
                if (!visited.insert(fingerprint()).second)
                    continue;
                if (visited.size() >= cfg_.maxStates) {
                    res.truncated = true;
                    continue;
                }
                if (fullyQuiescent())
                    ++res.terminals;
                BfsNode next;
                next.s = snap();
                next.path = node.path;
                next.path.push_back(step);
                frontier.push_back(std::move(next));
            }
        }
        res.visited = visited.size();
        return false;
    }

    struct Frame
    {
        RigSnap s;
        std::vector<McStep> steps;
        std::size_t next = 0;
        McStep via; //!< transition that reached this frame (root: none)
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{snap(), enumerate(), 0, McStep{}});
    if (fullyQuiescent())
        ++res.terminals;

    while (!stack.empty()) {
        Frame &f = stack.back();
        if (f.next >= f.steps.size()) {
            stack.pop_back();
            continue;
        }
        const McStep step = f.steps[f.next++];
        restore(f.s);
        violations_.clear();
        apply(step);
        ++res.transitions;
        if (!violations_.empty()) {
            res.violations = violations_;
            for (std::size_t i = 1; i < stack.size(); ++i)
                res.trace.push_back(stack[i].via);
            res.trace.push_back(step);
            res.visited = visited.size();
            return true;
        }
        if (!visited.insert(fingerprint()).second)
            continue;
        if (visited.size() >= cfg_.maxStates ||
            stack.size() >= cfg_.maxDepth) {
            res.truncated = true;
            continue;
        }
        if (fullyQuiescent())
            ++res.terminals;
        stack.push_back(Frame{snap(), enumerate(), 0, step});
    }
    res.visited = visited.size();
    return false;
}

McResult
McChecker::check()
{
    McResult res;
    res.symmetries = perms_.size();
    maxParkSeen_ = 0;
    const bool violated = explore(/*breadthFirst=*/false, res);
    res.maxParkSeen = maxParkSeen_;
    if (!violated)
        return res;

    // Re-explore breadth-first for a guaranteed-minimal counterexample;
    // keep the DFS exploration statistics (they describe the space).
    McResult minimal;
    minimal.symmetries = perms_.size();
    if (explore(/*breadthFirst=*/true, minimal) &&
        minimal.trace.size() <= res.trace.size()) {
        res.trace = minimal.trace;
        res.violations = minimal.violations;
    }
    res.maxParkSeen = maxParkSeen_;
    return res;
}

McResult
McChecker::replay(const std::vector<McStep> &trace)
{
    McResult res;
    res.symmetries = perms_.size();
    restore(root_);
    violations_.clear();
    drainUntagged();
    checkInvariants();
    for (const McStep &step : trace) {
        if (!violations_.empty())
            break;
        // A trace recorded against one protocol variant may stop being
        // executable on another (a message the fault produced no longer
        // exists, a grant now parks behind a hold). Stop at the longest
        // executable prefix — "clean" then means no step of the schedule
        // that could run violated anything.
        if (!canApply(step))
            break;
        apply(step);
        ++res.transitions;
        res.trace.push_back(step);
    }
    res.violations = violations_;
    res.maxParkSeen = maxParkSeen_;
    return res;
}

namespace
{

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else
            os << c;
    }
    os << '"';
}

} // namespace

void
McChecker::writeJson(const McConfig &cfg, const McResult &res,
                     std::ostream &os)
{
    os << "{\n  \"backend\": ";
    jsonEscape(os, cfg.backend);
    os << ",\n  \"nodes\": " << cfg.nodes
       << ",\n  \"blocks\": " << cfg.blocks
       << ",\n  \"dir_entries\": " << cfg.dir.entries
       << ",\n  \"dir_assoc\": " << cfg.dir.assoc
       << ",\n  \"dir_hops\": " << cfg.dir.hops
       << ",\n  \"hybrid_threshold\": " << cfg.dir.updThreshold
       << ",\n  \"seed_bug\": " << (cfg.seedBug ? "true" : "false")
       << ",\n  \"visited\": " << res.visited
       << ",\n  \"transitions\": " << res.transitions
       << ",\n  \"terminals\": " << res.terminals
       << ",\n  \"symmetries\": " << res.symmetries
       << ",\n  \"max_park\": " << res.maxParkSeen
       << ",\n  \"truncated\": " << (res.truncated ? "true" : "false")
       << ",\n  \"violations\": [";
    for (std::size_t i = 0; i < res.violations.size(); ++i) {
        os << (i != 0 ? ", " : "");
        jsonEscape(os, res.violations[i]);
    }
    os << "],\n  \"trace\": [";
    for (std::size_t i = 0; i < res.trace.size(); ++i) {
        const McStep &s = res.trace[i];
        os << (i != 0 ? "," : "") << "\n    ";
        if (s.deliver) {
            os << "{\"deliver\": {\"src\": " << s.channel / cfg.nodes
               << ", \"dst\": " << s.channel % cfg.nodes << ", \"op\": ";
            jsonEscape(os, s.label);
            os << "}}";
        } else {
            os << "{\"action\": {\"node\": " << s.node << ", \"agent\": ";
            jsonEscape(os, slotName(s.slot));
            os << ", \"block\": " << s.block << ", \"op\": ";
            jsonEscape(os, actName(s.act));
            os << "}}";
        }
    }
    os << (res.trace.empty() ? "]" : "\n  ]") << "\n}\n";
}

} // namespace cni
