/**
 * @file
 * cnimc — exhaustive model checking of the *real* coherence backends.
 *
 * The checker is not a re-model of the protocol: it instantiates the
 * production CoherenceDomain backends (snoop / directory, via the
 * CoherenceRegistry) over a real routed Interconnect and a real
 * EventQueue, and explores every reachable protocol state of a tiny
 * machine (2-3 nodes, 1-3 blocks) by driving the choice-point seam in
 * sim/choice.hpp:
 *
 *  - A *stable point* is a state whose event queue holds only tagged
 *    (in-flight protocol message) events: every deterministic
 *    continuation has been drained in canonical (tick, seq) order.
 *  - From a stable point the enabled transitions are (a) deliver the
 *    FIFO head of any message channel, and (b) have any idle mirror
 *    agent issue any enabled memory action. Applying a transition and
 *    re-draining yields the next stable point, deterministically.
 *  - Visited states are fingerprinted through McEncoder (ticks/stats
 *    excluded, values and request ids renamed, node labels permuted
 *    over every valid symmetry), so exploration terminates.
 *
 * The mirror agents replay mem/cache.cpp's exact MOESI decisions and
 * carry an explicit value token per line, which makes four invariant
 * families checkable at every stable point:
 *
 *  - SWMR: at most one M/E/O copy, and M/E exclude all other copies;
 *  - data value: every valid copy equals the last committed write, and
 *    every fill observes it;
 *  - exactly-once: each issued transaction completes exactly once;
 *  - liveness shape: no stuck state at event-queue quiescence (every
 *    domain mcQuiescent, no agent left outstanding) and park/recall
 *    queues stay bounded.
 *
 * Exploration is depth-first with snapshot-stack backtracking (cheap:
 * memory is O(path)); when a violation is found the checker re-runs
 * breadth-first from the root, which yields a guaranteed-minimal
 * counterexample trace. Traces replay through the same rig (replay()),
 * the DirRig-style scripted harness the regression tests embed.
 */

#ifndef CNI_MC_CHECKER_HPP
#define CNI_MC_CHECKER_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coh/domain.hpp"
#include "net/network.hpp"
#include "sim/choice.hpp"
#include "sim/event_queue.hpp"

namespace cni
{

class McEncoder;

/** What to check and how hard to try. */
struct McConfig
{
    std::string backend = "directory"; //!< CoherenceRegistry name
    DirParams dir{};                   //!< directory geometry
    int nodes = 2;
    /**
     * Coherent blocks in play. Block j belongs to node j % nodes (only
     * that node's processor-cache and NI mirror agents act on it — the
     * machine's address space is per-node private) and is always
     * remote-homed on the directory backend. Three blocks on a 2-node
     * machine put two same-home, same-set blocks in play — the sparse
     * recall/park paths.
     */
    int blocks = 1;
    std::size_t maxStates = 2'000'000; //!< visited-state cap (safety)
    std::size_t maxDepth = 100'000;    //!< DFS path-length cap (safety)
    /** Park/waiting-depth bound; 0 = auto (2 * nodes). */
    std::size_t maxPark = 0;
    /**
     * Arm DirectoryFabric::testSkipFwdDoneHold for the run — the
     * checker's own self-check: it must find the stale-FwdData window
     * the hold exists to close.
     */
    bool seedBug = false;
};

/** One exploration step — serializable, replayable. */
struct McStep
{
    bool deliver = false; //!< message delivery vs agent action
    // deliver:
    std::int32_t channel = -1; //!< src * nodes + dst
    std::string label;         //!< message op (trace cosmetics)
    // action:
    int node = -1;
    int slot = -1;  //!< 0 = processor cache, 1 = NI device
    int block = -1; //!< block index (McConfig::blocks)
    int act = 0;    //!< McChecker::Act
};

/** Outcome of a check() or replay() run. */
struct McResult
{
    std::size_t visited = 0;     //!< distinct canonical states
    std::size_t transitions = 0; //!< transitions executed (incl. revisits)
    std::size_t terminals = 0;   //!< fully quiescent endpoint states
    std::size_t maxParkSeen = 0; //!< deepest park/waiting queue observed
    std::size_t symmetries = 1;  //!< valid node permutations used
    bool truncated = false;      //!< hit maxStates/maxDepth — not exhaustive
    std::vector<std::string> violations; //!< empty = all invariants held
    std::vector<McStep> trace; //!< minimal path to the first violation

    bool clean() const { return violations.empty(); }
};

class McChecker
{
  public:
    /** Memory actions a mirror agent can take on one of its blocks. */
    enum Act
    {
        kRead = 0,  //!< load (GetS) — from Invalid
        kWrite,     //!< store — GetM from I, Upgrade from S/O, silent E/M
        kDrop,      //!< silent clean eviction — from S/E
        kWriteback, //!< dirty eviction (WB + data) — from O/M
        /**
         * Load hit on a Shared line — no transaction, but under the
         * adaptive update backend it resets the line's useless-update
         * counter, so the explorer must be able to interleave it with
         * incoming updates. Enumerated only when it changes state
         * (hybrid threshold armed, counter nonzero).
         */
        kTouch,
    };

    explicit McChecker(const McConfig &cfg);
    ~McChecker();

    McChecker(const McChecker &) = delete;
    McChecker &operator=(const McChecker &) = delete;

    /**
     * Exhaust the state space (DFS). On a violation, re-explore
     * breadth-first to return a minimal counterexample trace.
     */
    McResult check();

    /**
     * Apply a recorded trace step by step from the initial state and
     * report any violations it reproduces — the regression-test replay
     * path.
     */
    McResult replay(const std::vector<McStep> &trace);

    /** Summary (and counterexample, if any) as a JSON object. */
    static void writeJson(const McConfig &cfg, const McResult &res,
                          std::ostream &os);

  private:
    struct CacheMirror;
    struct MemMirror;
    friend struct CacheMirror;
    friend struct MemMirror;

    static constexpr int kCacheSlot = 0;
    static constexpr int kNiSlot = 1;
    static constexpr int kSlots = 2; //!< driven mirror agents per node

    /** MOESI of one mirrored line (mirrors mem/cache.hpp's Moesi). */
    enum class St : std::uint8_t
    {
        I,
        S,
        E,
        O,
        M
    };

    struct Line
    {
        St st = St::I;
        std::uint64_t val = 0; //!< value token this copy holds
        /** Mirror of Cache::Line::unreadUpdates (update backends). */
        std::uint8_t unread = 0;
    };

    /** Protocol-visible model state of one driven mirror agent. */
    struct AgentModel
    {
        std::vector<Line> lines; //!< per configured block
        bool outstanding = false;
        int actBlock = -1;
        int actKind = 0;            //!< Act
        TxnKind actTxn = TxnKind::ReadShared;
        std::uint64_t wrVal = 0; //!< token a pending write will commit
    };

    /** One configured coherent block. */
    struct BlockCfg
    {
        Addr local = 0;     //!< node-local address (issue/probe space)
        Addr globalKey = 0; //!< directory's global key (fingerprints)
        NodeId req = 0;     //!< owning node (its agents drive it)
        NodeId home = 0;    //!< serialization point
        int ord = 0;        //!< per-node ordinal (symmetry-invariant)
    };

    /** Everything restore() needs — one backtracking point. */
    struct RigSnap
    {
        EventQueue::Snapshot eq;
        std::vector<std::shared_ptr<const void>> dom;
        std::vector<AgentModel> agents;
        std::vector<std::uint64_t> mem;
        std::vector<std::uint64_t> current;
        std::uint64_t nextToken = 0;
    };

    /**
     * The planned scheduler: drains deterministic continuations in
     * (tick, seq) order; delivers exactly the tagged channel the
     * explorer asked for.
     */
    struct DriveChooser final : ChoiceScheduler
    {
        std::int32_t want = -1; //!< channel to deliver next; -1 = drain
        std::size_t choose(const std::vector<ChoiceOption> &options)
            override;
    };

    // Rig construction + bookkeeping.
    void buildBlocks();
    void buildSymmetries();
    AgentModel &agentAt(NodeId n, int slot)
    {
        return agents_[std::size_t(n) * kSlots + std::size_t(slot)];
    }
    int blockByLocal(Addr a) const;
    std::uint64_t freshToken() { return nextToken_++; }
    void fail(const std::string &what);

    /**
     * Data-value predicate. Invalidation backends demand the exact last
     * committed value. Update backends push the written word to sharers
     * *before* the writer's grant commits it, so mid-flight a valid copy
     * may legitimately hold the value of any outstanding write to the
     * block — membership in {current} ∪ {pending write tokens}.
     */
    bool valCurrentOrPending(int block, std::uint64_t v) const;

    // The stable-point step machine.
    void drainUntagged();
    std::vector<McStep> enumerate() const;
    bool canApply(const McStep &s) const;
    void apply(const McStep &s);
    void applyAction(const McStep &s);
    void onComplete(NodeId n, int slot, int block, int kind,
                    std::uint64_t wrVal, const SnoopResult &r);
    void checkInvariants();

    // State capture.
    RigSnap snap() const;
    void restore(const RigSnap &s);
    std::uint64_t fingerprint() const;
    void encodeState(McEncoder &enc, const std::vector<int> &perm,
                     const std::vector<int> &inv) const;

    // Exploration.
    bool explore(bool breadthFirst, McResult &res);

    McConfig cfg_;
    std::size_t maxPark_;
    EventQueue eq_;
    NetParams netParams_;
    std::unique_ptr<Interconnect> net_;
    std::vector<std::unique_ptr<CoherenceDomain>> dom_;
    std::vector<std::unique_ptr<CacheMirror>> mirrors_;
    std::vector<std::unique_ptr<MemMirror>> mems_;
    std::vector<int> requesterIds_; //!< per (node, slot) attach id
    DriveChooser chooser_;
    bool armedSeedBug_ = false;
    bool updateProtocol_ = false; //!< backend pushes updates (traits)
    /** Hybrid flip point for the cache-slot mirrors; 0 = never flip. */
    int mirrThr_ = 0;

    // Model state (snapshotted).
    std::vector<AgentModel> agents_;
    std::vector<std::uint64_t> memVal_;  //!< per block: memory's value
    std::vector<std::uint64_t> current_; //!< per block: last committed
    std::uint64_t nextToken_ = 1;

    // Block plan + symmetry group.
    std::vector<BlockCfg> blocks_;
    std::map<Addr, int> byLocal_;
    std::vector<std::vector<int>> perms_;    //!< valid node relabelings
    std::vector<std::vector<int>> permInv_;  //!< their inverses
    std::vector<std::map<Addr, std::uint32_t>> permCodes_;

    // Per-transition violation collection.
    std::vector<std::string> violations_;
    std::size_t maxParkSeen_ = 0;
    RigSnap root_;
};

} // namespace cni

#endif // CNI_MC_CHECKER_HPP
