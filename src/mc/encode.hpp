/**
 * @file
 * Canonical state encoding for the model checker (cnimc).
 *
 * Exhaustive exploration only terminates if equivalent states collide,
 * so the fingerprint must abstract everything that grows without bound
 * or varies with irrelevant detail:
 *
 *  - Ticks, stats, and port/occupancy accounting are never encoded —
 *    two states differing only in timing are the same protocol state.
 *  - Data values and request ids are renamed to dense small integers in
 *    order of first appearance during the (deterministic) encode walk.
 *    The protocol never computes on a value or an id, only compares
 *    and forwards them, so the renaming is a bisimulation.
 *  - Node identities are relabeled through a permutation. The rig
 *    encodes the state once per *valid* symmetry permutation (one that
 *    preserves each block's home and the per-node block assignment) and
 *    keeps the lexicographically smallest image — node-permutation
 *    symmetry reduction.
 *
 * The encoder is rebuilt per encoding pass (the token/id tables are
 * first-appearance-ordered, so they cannot be reused across passes).
 */

#ifndef CNI_MC_ENCODE_HPP
#define CNI_MC_ENCODE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace cni
{

class McEncoder
{
  public:
    /**
     * `nodePerm[n]` is the label node `n` gets in this image;
     * `blockCodes` maps every protocol-global block address to its
     * permuted dense code (the rig derives it from the same
     * permutation); `agentsPerNode` is the backend's agent-slot stride
     * (DirectoryFabric::kAgentsPerNode).
     */
    McEncoder(std::vector<int> nodePerm,
              std::map<Addr, std::uint32_t> blockCodes,
              int agentsPerNode = 2)
        : perm_(std::move(nodePerm)), blocks_(std::move(blockCodes)),
          agentsPerNode_(agentsPerNode)
    {
        bytes_.reserve(256);
    }

    // Raw emission -------------------------------------------------------

    void u8(std::uint8_t v) { bytes_.push_back(v); }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(std::uint8_t(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(std::uint8_t(v >> (8 * i)));
    }

    /** Structure marker — keeps adjacent variable-length runs apart. */
    void tag(char c) { u8(std::uint8_t(c)); }

    // Canonicalizing emission --------------------------------------------

    /** A node id, relabeled through the permutation. */
    void
    node(int n)
    {
        cni_assert(n >= 0 && std::size_t(n) < perm_.size());
        u8(std::uint8_t(perm_[std::size_t(n)]));
    }

    /** A global agent id (node * stride + slot); -1 allowed ("none"). */
    void
    agent(int g)
    {
        if (g < 0) {
            u8(0xFF);
            return;
        }
        const int n = g / agentsPerNode_;
        const int slot = g % agentsPerNode_;
        cni_assert(n >= 0 && std::size_t(n) < perm_.size());
        u8(std::uint8_t(perm_[std::size_t(n)] * agentsPerNode_ + slot));
    }

    /** Agent id sort key under this image (for order-free sets). */
    int
    agentKey(int g) const
    {
        if (g < 0)
            return -1;
        const int n = g / agentsPerNode_;
        return perm_[std::size_t(n)] * agentsPerNode_ + g % agentsPerNode_;
    }

    bool knownBlock(Addr g) const { return blocks_.count(g) != 0; }

    std::uint32_t
    blockCode(Addr g) const
    {
        auto it = blocks_.find(g);
        cni_assert(it != blocks_.end());
        return it->second;
    }

    /** A block address, as its permuted dense code. */
    void block(Addr g) { u32(blockCode(g)); }

    /** A data value, renamed to a dense first-appearance id (0 stays 0). */
    void
    token(std::uint64_t raw)
    {
        if (raw == 0) {
            u32(0);
            return;
        }
        auto it = tokens_.find(raw);
        if (it == tokens_.end())
            it = tokens_.emplace(raw, std::uint32_t(tokens_.size()) + 1)
                     .first;
        u32(it->second);
    }

    /**
     * A request id, renamed like a token. Raw ids are only unique per
     * requester node (each keeps its own counter), so the rename table
     * is keyed by the (relabeled) node too — two nodes' coincidentally
     * equal raw ids stay distinct requests in the fingerprint.
     */
    void
    reqId(int node, std::uint32_t raw)
    {
        cni_assert(node >= 0 && std::size_t(node) < perm_.size());
        const std::uint64_t key =
            (std::uint64_t(perm_[std::size_t(node)]) << 32) | raw;
        auto it = reqIds_.find(key);
        if (it == reqIds_.end())
            it = reqIds_.emplace(key, std::uint32_t(reqIds_.size()) + 1)
                     .first;
        u32(it->second);
    }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

    /** FNV-1a 64 over the canonical bytes. */
    std::uint64_t
    hash() const
    {
        std::uint64_t h = 1469598103934665603ULL;
        for (std::uint8_t b : bytes_) {
            h ^= b;
            h *= 1099511628211ULL;
        }
        return h;
    }

  private:
    std::vector<int> perm_;
    std::map<Addr, std::uint32_t> blocks_;
    int agentsPerNode_;
    std::vector<std::uint8_t> bytes_;
    std::map<std::uint64_t, std::uint32_t> tokens_;
    std::map<std::uint64_t, std::uint32_t> reqIds_;
};

} // namespace cni

#endif // CNI_MC_ENCODE_HPP
